"""Cost-based utility measures (paper, Sections 3 and 6).

Two cost models are implemented, both returning *negated* cost as the
utility so that higher is always better:

* :class:`LinearCost` -- the paper's measure (1):
  ``cost(p) = sum_i (h + alpha_i * n_i)``.  Every term depends on one
  source only, so the measure is *fully monotonic* and Greedy applies.

* :class:`BindJoinCost` -- the paper's measure (2), generalized to
  query length ``d``: tuples retrieved from the first source are
  shipped to the second source for a bind join, whose (estimated)
  output feeds the third, and so on::

      m_1 = n_1
      m_j = m_{j-1} * n_j / N_j          (join selectivity, j >= 2)
      cost = (h + alpha_1 * n_1) + sum_{j>=2} (h + alpha_j * m_j)

  With per-source transmission costs ``alpha`` this is *not* fully
  monotonic with respect to the earlier subgoals (Section 3).  Two
  orthogonal options reproduce the paper's experimental variants:

  - ``failure_aware=True`` divides by the probability that every
    access succeeds, giving the expected cost to the first successful
    execution ("cost with probability of source failure", Figures
    6.d-i);
  - ``caching=True`` zeroes the cost term of any source operation
    whose result was cached by a previously executed plan (Figures
    6.g-i).  This makes utility depend on the executed plans, breaks
    utility-diminishing returns (costs can only *drop*), and therefore
    rules out Streamer, exactly as discussed in Section 6.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import UtilityError
from repro.sources.catalog import SourceDescription
from repro.utility.base import ExecutionContext, PlanLike, Slots, UtilityMeasure
from repro.utility.intervals import Interval

#: A source operation: which source is accessed in which plan slot.
SourceOp = tuple[str, int]


class CachingContext(ExecutionContext):
    """Execution context that remembers cached source operations."""

    def __init__(self) -> None:
        super().__init__()
        self.cached_ops: set[SourceOp] = set()

    def record(self, plan: PlanLike) -> None:
        super().record(plan)
        for slot, source in enumerate(plan.sources):
            self.cached_ops.add((source.name, slot))

    def is_cached(self, source: SourceDescription, slot: int) -> bool:
        return (source.name, slot) in self.cached_ops


class LinearCost(UtilityMeasure):
    """Measure (1): independent per-source access costs.

    ``u(p) = -sum_i (h + alpha_i * n_i)``.  Fully monotonic: within any
    bucket, a source with smaller ``alpha * n`` is always preferable,
    no matter what the rest of the plan looks like or which plans ran
    before (Section 3).
    """

    name = "linear-cost"
    is_fully_monotonic = True
    has_diminishing_returns = True
    context_free = True

    def __init__(self, access_overhead: float = 1.0) -> None:
        if access_overhead < 0:
            raise UtilityError("access overhead must be non-negative")
        self.access_overhead = access_overhead

    def _term(self, source: SourceDescription) -> float:
        return self.access_overhead + source.stats.transfer_cost * source.stats.n_tuples

    def evaluate(self, plan: PlanLike, context: ExecutionContext) -> float:
        return -sum(self._term(source) for source in plan.sources)

    def evaluate_slots(self, slots: Slots, context: ExecutionContext) -> Interval:
        lo = 0.0
        hi = 0.0
        for members in slots:
            terms = [self._term(source) for source in members]
            lo += min(terms)
            hi += max(terms)
        return Interval(-hi, -lo)

    def source_preference_key(self, bucket: int, source: SourceDescription) -> float:
        # Smaller per-source cost term means higher utility.
        return -self._term(source)


class BindJoinCost(UtilityMeasure):
    """Measure (2): bind-join pipeline with estimated intermediate sizes.

    Parameters
    ----------
    access_overhead:
        The paper's ``h``, shared across sources.
    domain_sizes:
        The paper's ``N`` per join step: the total number of join
        values at each subgoal position (e.g. the total number of
        movies).  Either a single number used for every step or one
        value per subgoal; position 0 is unused.
    failure_aware:
        Divide cost by ``prod_i (1 - f_i)``, the probability that
        every source access succeeds.  The ``f_i`` read here are
        whatever ``source.stats.failure_prob`` holds — static catalog
        priors by default; at serving time
        :class:`repro.resilience.measure.HealthAwareMeasure` rebuilds
        the sources with *observed* EWMA failure rates before this
        measure ever sees them.
    caching:
        Zero the term of cached source operations (see module
        docstring).
    """

    has_diminishing_returns = True

    def __init__(
        self,
        access_overhead: float = 1.0,
        domain_sizes: float | Sequence[float] = 1000.0,
        failure_aware: bool = False,
        caching: bool = False,
        uniform_transfer: bool = False,
    ) -> None:
        if access_overhead < 0:
            raise UtilityError("access overhead must be non-negative")
        self.access_overhead = access_overhead
        self._domain_sizes = domain_sizes
        self.failure_aware = failure_aware
        self.caching = caching
        self.context_free = not caching
        # With caching, later executions can only lower costs, i.e.
        # *raise* utilities: diminishing returns fails (Section 6).
        self.has_diminishing_returns = not caching
        # Section 3: "if transmission costs alpha are the same across
        # all sources, then [measure (2)] is also monotonic wrt the
        # first subgoal, and thus is fully monotonic".  The caller
        # asserts that property by setting uniform_transfer; Greedy
        # then applies.  Failure probabilities and caching both break
        # the per-bucket order, so the claim is limited to the plain
        # measure.
        self.uniform_transfer = uniform_transfer
        self.is_fully_monotonic = (
            uniform_transfer and not failure_aware and not caching
        )
        parts = ["bind-join-cost"]
        if uniform_transfer:
            parts.append("uniform")
        if failure_aware:
            parts.append("failure")
        if caching:
            parts.append("caching")
        self.name = "+".join(parts)

    def domain_size(self, slot: int) -> float:
        if isinstance(self._domain_sizes, (int, float)):
            return float(self._domain_sizes)
        return float(self._domain_sizes[slot])

    # -- point evaluation ----------------------------------------------------------

    def evaluate(self, plan: PlanLike, context: ExecutionContext) -> float:
        cost = 0.0
        flow = 0.0
        success = 1.0
        for slot, source in enumerate(plan.sources):
            stats = source.stats
            if slot == 0:
                flow = float(stats.n_tuples)
            else:
                flow = flow * stats.n_tuples / self.domain_size(slot)
            term = self.access_overhead + stats.transfer_cost * flow
            if self.caching and self._is_cached(context, source, slot):
                term = 0.0
            cost += term
            if self.failure_aware:
                success *= 1.0 - stats.failure_prob
        if self.failure_aware:
            cost /= success
        return -cost

    def _is_cached(
        self, context: ExecutionContext, source: SourceDescription, slot: int
    ) -> bool:
        return isinstance(context, CachingContext) and context.is_cached(source, slot)

    # -- interval evaluation ----------------------------------------------------------

    def evaluate_slots(self, slots: Slots, context: ExecutionContext) -> Interval:
        cost = Interval.point(0.0)
        flow = Interval.point(0.0)
        success = Interval.point(1.0)
        for slot, members in enumerate(slots):
            n = Interval(
                min(s.stats.n_tuples for s in members),
                max(s.stats.n_tuples for s in members),
            )
            alpha = Interval(
                min(s.stats.transfer_cost for s in members),
                max(s.stats.transfer_cost for s in members),
            )
            if slot == 0:
                flow = n
            else:
                flow = flow * n / self.domain_size(slot)
            term = alpha * flow + self.access_overhead
            if self.caching:
                cached = [self._is_cached(context, s, slot) for s in members]
                if all(cached):
                    term = Interval.point(0.0)
                elif any(cached):
                    term = Interval(0.0, term.hi)
            cost = cost + term
            if self.failure_aware:
                one_minus_f = Interval(
                    min(1.0 - s.stats.failure_prob for s in members),
                    max(1.0 - s.stats.failure_prob for s in members),
                )
                success = success * one_minus_f
        if self.failure_aware:
            cost = cost / success
        return -cost

    # -- monotonicity (uniform-transfer variant) --------------------------------------

    def source_preference_key(self, bucket: int, source: SourceDescription) -> float:
        if not self.is_fully_monotonic:
            return super().source_preference_key(bucket, source)
        # With uniform alpha every cost term is increasing in each
        # source's tuple count, so fewer tuples is always better.
        return -float(source.stats.n_tuples)

    # -- independence ----------------------------------------------------------------

    def new_context(self) -> ExecutionContext:
        if self.caching:
            return CachingContext()
        return ExecutionContext()

    def independent(self, first: PlanLike, second: PlanLike) -> bool:
        if not self.caching:
            return True
        # Independent iff the plans share no source operation: caching a
        # result only affects plans using the same source in the same slot.
        return all(
            a.name != b.name for a, b in zip(first.sources, second.sources)
        )

    def has_independent_witness(
        self, slots: Slots, executed: Sequence[PlanLike]
    ) -> bool:
        if not self.caching:
            return True
        # A witness exists iff every slot has a member not used at that
        # slot by any executed plan; picking those members yields a
        # concrete plan sharing no source operation with any of them.
        for slot, members in enumerate(slots):
            used = {plan.sources[slot].name for plan in executed}
            if all(source.name in used for source in members):
                return False
        return True

    def all_members_independent(self, slots: Slots, plan: PlanLike) -> bool:
        if not self.caching:
            return True
        # A member combination shares an operation with *plan* exactly
        # when it picks the plan's source at some slot, so all
        # combinations are independent iff no slot offers that source.
        return all(
            plan.sources[slot].name not in {s.name for s in members}
            for slot, members in enumerate(slots)
        )

"""Utility measures and their supporting arithmetic.

The paper evaluates four utility measures for which full monotonicity
does not hold (Section 6), plus the fully monotonic linear cost used to
motivate Greedy (Section 3).  All measures implement the
:class:`~repro.utility.base.UtilityMeasure` interface, which exposes

* point evaluation of concrete plans given an execution context,
* sound interval evaluation of abstract plans (for Drips-family
  algorithms),
* the structural properties the ordering algorithms key off of
  (full monotonicity, diminishing returns, context freeness), and
* sound plan-independence oracles.
"""

from repro.utility.base import ExecutionContext, UtilityMeasure
from repro.utility.boxes import Box, DisjointBoxUnion
from repro.utility.cost import BindJoinCost, LinearCost
from repro.utility.coverage import CoverageUtility
from repro.utility.intervals import Interval
from repro.utility.monetary import MonetaryCostPerTuple

__all__ = [
    "BindJoinCost",
    "Box",
    "CoverageUtility",
    "DisjointBoxUnion",
    "ExecutionContext",
    "Interval",
    "LinearCost",
    "MonetaryCostPerTuple",
    "UtilityMeasure",
]

"""The utility-measure interface.

Following the paper's general notion of utility (Section 2), the
utility of a plan is a number that may depend on the plans already
executed: ``u(p | p1, ..., pl, Q)``.  The executed set and any derived
state (result caches, covered tuples) live in an
:class:`ExecutionContext`; measures evaluate plans *against* a context
and record executions *into* it.

Plans are duck-typed: anything with a ``sources`` tuple of
:class:`~repro.sources.catalog.SourceDescription` (one per query
subgoal, in subgoal order) is a concrete plan.  Abstract plans are
represented to measures as ``slots``: a tuple of tuples of member
sources, one inner tuple per subgoal.

Structural properties (paper, Section 3) are exposed as attributes so
ordering algorithms can check their own applicability:

``is_fully_monotonic``
    Per-bucket total orders exist such that upgrading a source always
    improves the plan, regardless of the executed set (enables Greedy).
``has_diminishing_returns``
    A plan's utility never increases as more plans are executed
    (required by Streamer).
``context_free``
    Utility is independent of the executed set entirely (implies
    diminishing returns; makes every plan pair independent).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Protocol, Sequence

from repro.errors import UtilityError
from repro.sources.catalog import SourceDescription
from repro.utility.intervals import Interval


class PlanLike(Protocol):
    """Anything with one chosen source per query subgoal."""

    @property
    def sources(self) -> tuple[SourceDescription, ...]: ...


#: Abstract plans are handed to measures as per-slot member tuples.
Slots = tuple[tuple[SourceDescription, ...], ...]


class ExecutionContext:
    """Mutable record of the plans executed so far.

    Subclasses add measure-specific derived state (covered-tuple
    unions, cached source operations).  Contexts are created by
    :meth:`UtilityMeasure.new_context` and mutated only through
    :meth:`record`.
    """

    def __init__(self) -> None:
        self.executed: list[PlanLike] = []

    def record(self, plan: PlanLike) -> None:
        """Mark *plan* as executed."""
        self.executed.append(plan)

    def __len__(self) -> int:
        return len(self.executed)


class UtilityMeasure(ABC):
    """Base class for all utility measures.

    Higher utility is better; cost-based measures return negated costs
    so that a single "find the maximum" convention serves every
    orderer.
    """

    #: Short name used in experiment tables.
    name: str = "utility"

    #: Full monotonicity (Section 3); enables the Greedy algorithm.
    is_fully_monotonic: bool = False

    #: Utility-diminishing returns (Section 3); required by Streamer.
    has_diminishing_returns: bool = True

    #: True when utility ignores the executed set entirely.
    context_free: bool = True

    # -- contexts ---------------------------------------------------------------

    def new_context(self) -> ExecutionContext:
        """Create an empty execution context for this measure."""
        return ExecutionContext()

    # -- evaluation ---------------------------------------------------------------

    @abstractmethod
    def evaluate(self, plan: PlanLike, context: ExecutionContext) -> float:
        """Utility of a concrete plan given the executed set."""

    @abstractmethod
    def evaluate_slots(self, slots: Slots, context: ExecutionContext) -> Interval:
        """Sound utility interval for an abstract plan.

        The returned interval must contain ``evaluate(p, context)`` for
        every concrete plan ``p`` obtainable by picking one member per
        slot.
        """

    # -- independence -----------------------------------------------------------

    def independent(self, first: PlanLike, second: PlanLike) -> bool:
        """Sound pairwise independence test (paper, Section 3).

        True means executing one plan provably never changes the
        other's utility.  Context-free measures are trivially fully
        independent.
        """
        if self.context_free:
            return True
        raise NotImplementedError

    def has_independent_witness(
        self, slots: Slots, executed: Sequence[PlanLike]
    ) -> bool:
        """Is some concrete plan in *slots* independent of all *executed*?

        Sound but not necessarily complete (paper, Section 3): a True
        answer must be correct; False may be conservative.  Used by
        Streamer's dominance-link validity check.
        """
        if self.context_free:
            return True
        raise NotImplementedError

    def all_members_independent(self, slots: Slots, plan: PlanLike) -> bool:
        """Is *every* concrete plan in *slots* independent of *plan*?

        Sound in the conservative direction: True must be correct,
        False may be pessimistic.  Streamer uses this to decide whether
        a node's cached utility interval survives the removal of
        *plan* ("set u(e) <- nil" in Figure 5).
        """
        if self.context_free:
            return True
        raise NotImplementedError

    # -- monotonicity hooks --------------------------------------------------------

    def source_preference_key(self, bucket: int, source: SourceDescription) -> float:
        """Per-bucket preference key for fully monotonic measures.

        Greedy ranks a bucket's sources by this key, higher = better.
        Measures that are not fully monotonic raise
        :class:`~repro.errors.UtilityError`.
        """
        raise UtilityError(
            f"measure {self.name!r} is not fully monotonic; "
            "it defines no per-source preference key"
        )

    # -- helpers for subclasses ------------------------------------------------------

    @staticmethod
    def slots_of(plan: PlanLike) -> Slots:
        """View a concrete plan as singleton slots."""
        return tuple((source,) for source in plan.sources)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"

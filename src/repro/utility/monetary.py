"""Average monetary cost per output tuple (paper, Section 6).

``u(p) = -Cost(p) / NumOutputTuples(p)`` where ``Cost`` is the
monetary analogue of cost measure (2) -- a per-access fee plus a
per-item fee on the items each source ships -- and
``NumOutputTuples`` is the standard bind-join output estimate (as in
Yerneni et al. [23]): ``m_1 = n_1``, ``m_j = m_{j-1} * n_j / N_j``,
output = ``m_d``.

Like the paper we support both the plain (context-free) variant and a
caching variant where fees are not paid again for cached source
operations.  The paper reports that for this measure the abstraction
heuristic is comparatively ineffective and PI wins (Figures 6.j-l):
the ratio of two interval quantities is wide even when each factor is
grouped well, which our reproduction confirms.
"""

from __future__ import annotations

from typing import Sequence

from repro.sources.catalog import SourceDescription
from repro.utility.base import ExecutionContext, PlanLike, Slots, UtilityMeasure
from repro.utility.cost import CachingContext
from repro.utility.intervals import Interval

#: Floor applied to the estimated output size before dividing.
_MIN_OUTPUT = 1e-6


class MonetaryCostPerTuple(UtilityMeasure):
    """Negated average monetary cost per output tuple."""

    is_fully_monotonic = False

    def __init__(
        self,
        domain_sizes: float | Sequence[float] = 1000.0,
        caching: bool = False,
    ) -> None:
        self._domain_sizes = domain_sizes
        self.caching = caching
        self.context_free = not caching
        self.has_diminishing_returns = not caching
        self.name = "monetary-per-tuple" + ("+caching" if caching else "")

    def domain_size(self, slot: int) -> float:
        if isinstance(self._domain_sizes, (int, float)):
            return float(self._domain_sizes)
        return float(self._domain_sizes[slot])

    def new_context(self) -> ExecutionContext:
        if self.caching:
            return CachingContext()
        return ExecutionContext()

    # -- point evaluation ----------------------------------------------------------

    def evaluate(self, plan: PlanLike, context: ExecutionContext) -> float:
        cost = 0.0
        flow = 0.0
        for slot, source in enumerate(plan.sources):
            stats = source.stats
            if slot == 0:
                flow = float(stats.n_tuples)
            else:
                flow = flow * stats.n_tuples / self.domain_size(slot)
            if self.caching and self._is_cached(context, source, slot):
                continue
            cost += stats.access_fee + stats.fee_per_item * flow
        return -cost / max(flow, _MIN_OUTPUT)

    def _is_cached(
        self, context: ExecutionContext, source: SourceDescription, slot: int
    ) -> bool:
        return isinstance(context, CachingContext) and context.is_cached(source, slot)

    # -- interval evaluation ----------------------------------------------------------

    def evaluate_slots(self, slots: Slots, context: ExecutionContext) -> Interval:
        cost = Interval.point(0.0)
        flow = Interval.point(0.0)
        for slot, members in enumerate(slots):
            n = Interval(
                min(s.stats.n_tuples for s in members),
                max(s.stats.n_tuples for s in members),
            )
            if slot == 0:
                flow = n
            else:
                flow = flow * n / self.domain_size(slot)
            access = Interval(
                min(s.stats.access_fee for s in members),
                max(s.stats.access_fee for s in members),
            )
            per_item = Interval(
                min(s.stats.fee_per_item for s in members),
                max(s.stats.fee_per_item for s in members),
            )
            term = access + per_item * flow
            if self.caching:
                cached = [self._is_cached(context, s, slot) for s in members]
                if all(cached):
                    term = Interval.point(0.0)
                elif any(cached):
                    term = Interval(0.0, term.hi)
            cost = cost + term
        output = Interval(max(flow.lo, _MIN_OUTPUT), max(flow.hi, _MIN_OUTPUT))
        return -(cost / output)

    # -- independence ----------------------------------------------------------------

    def independent(self, first: PlanLike, second: PlanLike) -> bool:
        if not self.caching:
            return True
        return all(a.name != b.name for a, b in zip(first.sources, second.sources))

    def has_independent_witness(
        self, slots: Slots, executed: Sequence[PlanLike]
    ) -> bool:
        if not self.caching:
            return True
        for slot, members in enumerate(slots):
            used = {plan.sources[slot].name for plan in executed}
            if all(source.name in used for source in members):
                return False
        return True

    def all_members_independent(self, slots: Slots, plan: PlanLike) -> bool:
        if not self.caching:
            return True
        return all(
            plan.sources[slot].name not in {s.name for s in members}
            for slot, members in enumerate(slots)
        )

"""Baseline files: park known findings without pinning line numbers.

A baseline is a JSON document keyed by diagnostic fingerprints
(:meth:`repro.analysis.diagnostics.Diagnostic.fingerprint`)::

    {
      "version": 1,
      "fingerprints": {
        "0a1b...": {"rule": "SCN003", "file": "random-lav", "message": "..."}
      }
    }

``repro lint --baseline file.json`` drops any finding whose fingerprint
appears in the file, reporting only how many were suppressed.  The
fingerprint hashes rule + file + message, so baselined findings survive
unrelated edits but resurface the moment their message changes.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from repro.analysis.diagnostics import Diagnostic
from repro.errors import AnalysisError

BASELINE_VERSION = 1


def load_baseline(path: str) -> frozenset[str]:
    """The fingerprints recorded in the baseline file at *path*."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise AnalysisError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise AnalysisError(f"baseline {path} must be a JSON object")
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise AnalysisError(
            f"baseline {path} has version {version!r}; "
            f"this tool reads version {BASELINE_VERSION}"
        )
    fingerprints = payload.get("fingerprints")
    if not isinstance(fingerprints, dict):
        raise AnalysisError(f"baseline {path} is missing 'fingerprints'")
    return frozenset(str(fp) for fp in fingerprints)


def write_baseline(path: str, diagnostics: Iterable[Diagnostic]) -> int:
    """Write a baseline capturing *diagnostics*; returns how many."""
    fingerprints = {}
    for diagnostic in diagnostics:
        fingerprints[diagnostic.fingerprint()] = {
            "rule": diagnostic.rule,
            "file": diagnostic.location.file,
            "message": diagnostic.message,
        }
    payload = {"version": BASELINE_VERSION, "fingerprints": fingerprints}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(fingerprints)


def apply_baseline(
    diagnostics: Sequence[Diagnostic], fingerprints: frozenset[str]
) -> tuple[list[Diagnostic], int]:
    """Split *diagnostics* into (fresh, number suppressed by baseline)."""
    fresh = [d for d in diagnostics if d.fingerprint() not in fingerprints]
    return fresh, len(diagnostics) - len(fresh)

"""Orchestration: discover targets, run rule families, decide exit codes.

The runner is what ``repro lint`` calls: it walks Python files for the
code family, builds the bundled scenarios for the scenario family,
applies ``--select``/``--ignore``, inline ``# lint: allow[...]``
suppressions, and the optional baseline file, and folds the surviving
diagnostics into an exit code:

* ``0`` — nothing at or above the failure threshold,
* ``1`` — findings at or above the threshold,
* ``2`` — the analysis itself could not run (bad arguments, unreadable
  files, broken baselines) — reported as :class:`AnalysisError`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

# Importing the rule modules registers their checkers.
from repro.analysis import code_rules as _code_rules  # noqa: F401
from repro.analysis import concurrency as _concurrency_rules  # noqa: F401
from repro.analysis import scenario as _scenario_rules  # noqa: F401
from repro.analysis.astutils import CodeModule
from repro.analysis.baseline import apply_baseline, load_baseline
from repro.analysis.concurrency import build_model
from repro.analysis.diagnostics import Diagnostic, Severity, sort_diagnostics
from repro.analysis.registry import (
    DEFAULT_REGISTRY,
    FAMILY_CODE,
    FAMILY_CONCURRENCY,
    FAMILY_SCENARIO,
    Rule,
    RuleRegistry,
)
from repro.analysis.scenario import ScenarioContext
from repro.errors import AnalysisError

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


@dataclass
class LintResult:
    """Everything one lint run produced."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Findings dropped by the baseline file.
    suppressed: int = 0
    #: Which rule families actually ran.
    families: tuple[str, ...] = ()
    #: The file paths / scenario names that were analyzed.
    targets: tuple[str, ...] = ()

    def exit_code(self, fail_on: Severity = Severity.WARNING) -> int:
        if any(d.severity >= fail_on for d in self.diagnostics):
            return EXIT_FINDINGS
        return EXIT_CLEAN


# -- code family -------------------------------------------------------------------


def discover_python_files(paths: Sequence[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            found.add(path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d not in ("__pycache__", ".git")
                )
                for name in files:
                    if name.endswith(".py"):
                        found.add(os.path.join(root, name))
        else:
            raise AnalysisError(f"no such file or directory: {path}")
    return sorted(found)


def lint_code(
    paths: Sequence[str],
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
    registry: RuleRegistry = DEFAULT_REGISTRY,
) -> LintResult:
    """Run the code rule family over the given files/directories."""
    rules = registry.resolve_selection(FAMILY_CODE, select, ignore)
    files = discover_python_files(paths)
    diagnostics: list[Diagnostic] = []
    for path in files:
        module = CodeModule.from_file(path)
        diagnostics.extend(_lint_module(module, rules, registry))
    return LintResult(
        diagnostics=sort_diagnostics(diagnostics),
        families=(FAMILY_CODE,),
        targets=tuple(files),
    )


def lint_source(
    source: str,
    path: str = "<string>",
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
    registry: RuleRegistry = DEFAULT_REGISTRY,
) -> list[Diagnostic]:
    """Lint one in-memory module (the fixture tests' entry point)."""
    rules = registry.resolve_selection(FAMILY_CODE, select, ignore)
    module = CodeModule.from_source(source, path)
    return sort_diagnostics(_lint_module(module, rules, registry))


def _lint_module(
    module: CodeModule, rules: Iterable[Rule], registry: RuleRegistry
) -> list[Diagnostic]:
    diagnostics = []
    for rule in rules:
        checker = registry.checker(rule.id)
        for diagnostic in checker(module):
            if module.allowed(diagnostic.location.line, rule.id, rule.slug):
                continue
            diagnostics.append(diagnostic)
    return diagnostics


# -- concurrency family ------------------------------------------------------------


def lint_concurrency(
    paths: Sequence[str],
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
    registry: RuleRegistry = DEFAULT_REGISTRY,
) -> LintResult:
    """Run the whole-program concurrency pass over files/directories.

    Unlike the per-file code family, all modules are parsed first
    (phase 1: fact extraction) and the rules run once over the joined
    :class:`~repro.analysis.concurrency.model.ProgramModel` (phase 2).
    Inline ``# lint: allow[...]`` directives still apply — findings
    are mapped back to their module for suppression filtering.
    """
    rules = registry.resolve_selection(FAMILY_CONCURRENCY, select, ignore)
    files = discover_python_files(paths)
    modules = [CodeModule.from_file(path) for path in files]
    diagnostics = _lint_program(modules, rules, registry)
    return LintResult(
        diagnostics=diagnostics,
        families=(FAMILY_CONCURRENCY,),
        targets=tuple(files),
    )


def lint_concurrency_sources(
    sources: Sequence[tuple[str, str]],
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
    registry: RuleRegistry = DEFAULT_REGISTRY,
) -> list[Diagnostic]:
    """Run the concurrency pass over in-memory ``(path, source)``
    pairs — the fixture tests' entry point."""
    rules = registry.resolve_selection(FAMILY_CONCURRENCY, select, ignore)
    modules = [
        CodeModule.from_source(source, path) for path, source in sources
    ]
    return _lint_program(modules, rules, registry)


def _lint_program(
    modules: Sequence[CodeModule],
    rules: Iterable[Rule],
    registry: RuleRegistry,
) -> list[Diagnostic]:
    if not rules:
        return []
    by_path = {module.path: module for module in modules}
    model = build_model(modules)
    diagnostics = []
    for rule in rules:
        checker = registry.checker(rule.id)
        for diagnostic in checker(model):
            module = by_path.get(diagnostic.location.file)
            if module is not None and module.allowed(
                diagnostic.location.line, rule.id, rule.slug
            ):
                continue
            diagnostics.append(diagnostic)
    return sort_diagnostics(diagnostics)


# -- scenario family ---------------------------------------------------------------

#: Lazily-built named scenario factories, so ``repro lint --scenario``
#: works out of the box on the bundled workloads.
ScenarioFactory = Callable[[], ScenarioContext]


def _movies_scenario() -> ScenarioContext:
    from repro.utility.cost import BindJoinCost, LinearCost
    from repro.workloads.movies import movie_domain

    domain = movie_domain()
    return ScenarioContext(
        name="movies",
        catalog=domain.catalog,
        query=domain.query,
        measures=(
            LinearCost(),
            BindJoinCost(domain_sizes=200.0),
            BindJoinCost(domain_sizes=200.0, uniform_transfer=False,
                         failure_aware=True),
        ),
    )


def _cameras_scenario() -> ScenarioContext:
    from repro.utility.cost import BindJoinCost, LinearCost
    from repro.utility.coverage import CoverageUtility
    from repro.workloads.cameras import camera_domain

    domain = camera_domain()
    return ScenarioContext(
        name="cameras",
        catalog=domain.catalog,
        query=domain.query,
        measures=(
            LinearCost(),
            BindJoinCost(domain_sizes=500.0),
            CoverageUtility(domain.model),
        ),
        model=domain.model,
    )


def _paper_example_scenario() -> ScenarioContext:
    from repro.utility.cost import LinearCost
    from repro.utility.coverage import CoverageUtility
    from repro.workloads.paper_example import paper_example

    domain = paper_example()
    return ScenarioContext(
        name="paper-example",
        catalog=domain.catalog,
        query=domain.query,
        measures=(LinearCost(), CoverageUtility(domain.model)),
        model=domain.model,
    )


def _synthetic_scenario() -> ScenarioContext:
    from repro.workloads.synthetic import generate_domain

    domain = generate_domain(bucket_size=12, query_length=2, seed=3)
    return ScenarioContext(
        name="synthetic",
        catalog=domain.catalog,
        query=domain.query,
        measures=(
            domain.linear_cost(),
            domain.bind_join_cost(),
            domain.coverage(),
            domain.failure_cost(),
            domain.monetary(),
        ),
        model=domain.model,
    )


def _random_lav_scenario() -> ScenarioContext:
    from repro.utility.cost import LinearCost
    from repro.workloads.random_lav import ordering_scenario

    domain = ordering_scenario(0)
    return ScenarioContext(
        name="random-lav",
        catalog=domain.scenario.catalog,
        query=domain.scenario.query,
        measures=(
            LinearCost(),
            domain.bind_join_cost(),
            domain.coverage(),
        ),
        model=domain.model,
        # The random-LAV generator deliberately draws views that may
        # cover no query subgoal — that incompleteness is the point of
        # the cross-validation workload (see workloads/random_lav.py).
        # At seed 0 the dead source is src1; waived, not fixed.
        waived=frozenset({("SCN003", "src1")}),
    )


BUILTIN_SCENARIOS: dict[str, ScenarioFactory] = {
    "movies": _movies_scenario,
    "cameras": _cameras_scenario,
    "paper-example": _paper_example_scenario,
    "synthetic": _synthetic_scenario,
    "random-lav": _random_lav_scenario,
}


def lint_scenarios(
    names: Sequence[str] = (),
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
    registry: RuleRegistry = DEFAULT_REGISTRY,
    contexts: Optional[Sequence[ScenarioContext]] = None,
) -> LintResult:
    """Run the scenario rule family over named or explicit scenarios."""
    rules = registry.resolve_selection(FAMILY_SCENARIO, select, ignore)
    if contexts is None:
        chosen = tuple(names) or tuple(BUILTIN_SCENARIOS)
        built: list[ScenarioContext] = []
        for name in chosen:
            try:
                factory = BUILTIN_SCENARIOS[name]
            except KeyError:
                known = ", ".join(sorted(BUILTIN_SCENARIOS))
                raise AnalysisError(
                    f"unknown scenario {name!r}; bundled scenarios: {known}"
                ) from None
            built.append(factory())
        contexts = built
    diagnostics: list[Diagnostic] = []
    for context in contexts:
        for rule in rules:
            checker = registry.checker(rule.id)
            diagnostics.extend(checker(context))
    return LintResult(
        diagnostics=sort_diagnostics(diagnostics),
        families=(FAMILY_SCENARIO,),
        targets=tuple(c.name for c in contexts),
    )


def lint_scenario(
    context: ScenarioContext,
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
    registry: RuleRegistry = DEFAULT_REGISTRY,
) -> list[Diagnostic]:
    """Lint one scenario context (the scenario tests' entry point)."""
    return lint_scenarios(
        select=select, ignore=ignore, registry=registry, contexts=[context]
    ).diagnostics


# -- combining families and the baseline -------------------------------------------


def run_lint(
    *,
    code_paths: Sequence[str] = (),
    scenario_names: Sequence[str] = (),
    run_code: bool = False,
    run_scenarios: bool = False,
    run_concurrency: bool = False,
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
    baseline_path: Optional[str] = None,
    registry: RuleRegistry = DEFAULT_REGISTRY,
) -> LintResult:
    """One ``repro lint`` invocation: families, selection, baseline."""
    if not run_code and not run_scenarios and not run_concurrency:
        raise AnalysisError(
            "nothing to lint: enable --code, --scenario, and/or "
            "--concurrency"
        )
    diagnostics: list[Diagnostic] = []
    families: list[str] = []
    targets: list[str] = []
    if run_code:
        result = lint_code(
            code_paths or ("src/repro",), select, ignore, registry
        )
        diagnostics.extend(result.diagnostics)
        families.extend(result.families)
        targets.extend(result.targets)
    if run_concurrency:
        result = lint_concurrency(
            code_paths or ("src/repro",), select, ignore, registry
        )
        diagnostics.extend(result.diagnostics)
        families.extend(result.families)
        for target in result.targets:
            if target not in targets:
                targets.append(target)
    if run_scenarios:
        result = lint_scenarios(scenario_names, select, ignore, registry)
        diagnostics.extend(result.diagnostics)
        families.extend(result.families)
        targets.extend(result.targets)
    suppressed = 0
    if baseline_path is not None:
        fingerprints = load_baseline(baseline_path)
        diagnostics, suppressed = apply_baseline(
            sort_diagnostics(diagnostics), fingerprints
        )
    return LintResult(
        diagnostics=sort_diagnostics(diagnostics),
        suppressed=suppressed,
        families=tuple(families),
        targets=tuple(targets),
    )

"""The scenario rule family: lint a source catalog against a query.

A *scenario* is everything a mediator session needs — catalog, user
query, the utility measures the experiments run, and optionally the
extension/overlap model.  The rules cross-check that bundle before a
single plan executes:

* ``SCN001 unsafe-view`` — the query or a view has head variables that
  no body atom restricts (range-unrestricted output columns).
* ``SCN002 unrecoverable-head-variable`` — a query head variable sits
  at a subgoal position that *every* covering source projects away
  (all inverse rules carry a Skolem there), so no plan can return it.
* ``SCN003 dead-source`` — a catalog source that enters no bucket of
  the query: it will never appear in any plan.
* ``SCN004 empty-bucket`` — a subgoal no source covers; the plan space
  is empty and reformulation will fail outright.
* ``SCN005 redundant-view`` — two sources with logically equivalent
  views (via :mod:`repro.datalog.containment`) that are also
  indistinguishable to the orderers (same statistics, same extensions
  where modeled).  One of them is dead weight in every bucket.
* ``SCN006 measure-property`` — sampled counterexample search against
  each utility measure's declared structural flags: interval soundness,
  full monotonicity (preference keys vs. point utilities), context
  freeness, and utility-diminishing returns.
* ``SCN007 monotonicity-misdeclaration`` — the operational consequence
  of ``is_fully_monotonic`` that Greedy actually relies on: the plan
  assembled from each bucket's best source by preference key must be
  unbeaten by any sampled plan, and restricting the slots to exactly
  that plan must collapse ``evaluate_slots`` onto its utility.

The rules are deliberately conservative where the semantics are
open-world: sources with equivalent views but different statistics are
*not* redundant (the paper's sources are incomplete, so equal
definitions do not imply equal contents).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.analysis.diagnostics import Diagnostic, Location, Severity
from repro.analysis.registry import FAMILY_SCENARIO, rule
from repro.datalog.containment import are_equivalent
from repro.datalog.query import ConjunctiveQuery
from repro.datalog.terms import Atom, Variable
from repro.errors import ReproError, UtilityError
from repro.reformulation.buckets import bucket_candidates
from repro.reformulation.inverse_rules import exported_position_map
from repro.reformulation.plans import QueryPlan
from repro.sources.catalog import Catalog, SourceDescription
from repro.sources.overlap import OverlapModel
from repro.utility.base import UtilityMeasure

#: How many concrete plans SCN006 samples per measure.
_SAMPLE_PLANS = 40
#: Tolerance for float comparisons in the property spot-checks.
_EPS = 1e-9


@dataclass
class ScenarioContext:
    """One lintable scenario: catalog + query + measures (+ model)."""

    name: str
    catalog: Catalog
    query: ConjunctiveQuery
    measures: tuple[UtilityMeasure, ...] = ()
    model: Optional[OverlapModel] = None
    #: Structural findings the scenario declares intentional, as
    #: ``(rule_id, subject)`` pairs — e.g. ``("SCN003", "v_noise_3")``
    #: for a deliberately unusable source in a stress workload.
    waived: frozenset[tuple[str, str]] = frozenset()
    _candidates: Optional[tuple[tuple[SourceDescription, ...], ...]] = field(
        default=None, repr=False, compare=False
    )

    def candidates(self) -> tuple[tuple[SourceDescription, ...], ...]:
        """Per-subgoal bucket members (memoized, non-raising)."""
        if self._candidates is None:
            self._candidates = bucket_candidates(self.query, self.catalog)
        return self._candidates

    def is_waived(self, rule_id: str, subject: str) -> bool:
        return (rule_id, subject) in self.waived


def _diagnostic(
    context: ScenarioContext,
    rule_id: str,
    severity: Severity,
    message: str,
    fix_hint: str = "",
    **data: object,
) -> Diagnostic:
    return Diagnostic(
        rule=rule_id,
        severity=severity,
        message=message,
        location=Location(context.name),
        fix_hint=fix_hint,
        family=FAMILY_SCENARIO,
        data=data,
    )


# -- SCN001: unsafe / range-unrestricted views -------------------------------------


def _unrestricted_head_vars(query: ConjunctiveQuery) -> tuple[Variable, ...]:
    body_vars = {v for atom in query.body for v in atom.variables()}
    return tuple(v for v in query.head.variables() if v not in body_vars)


@rule(
    "SCN001",
    "unsafe-view",
    FAMILY_SCENARIO,
    Severity.ERROR,
    "query or view head variable unrestricted by the body",
    "A head variable no body atom mentions ranges over the whole "
    "domain; neither query evaluation nor view expansion is defined "
    "for it.",
)
def check_unsafe_view(context: ScenarioContext) -> Iterator[Diagnostic]:
    loose = _unrestricted_head_vars(context.query)
    if loose:
        names = ", ".join(v.name for v in loose)
        yield _diagnostic(
            context,
            "SCN001",
            Severity.ERROR,
            f"query {context.query.name!r} is unsafe: head variable(s) "
            f"{names} never occur in the body",
            fix_hint="add a body atom restricting the variable, or drop "
            "it from the head",
            query=context.query.name,
            variables=[v.name for v in loose],
        )
    for source in context.catalog.sources:
        loose = _unrestricted_head_vars(source.view)
        if loose:
            names = ", ".join(v.name for v in loose)
            yield _diagnostic(
                context,
                "SCN001",
                Severity.ERROR,
                f"view of source {source.name!r} is unsafe: head "
                f"variable(s) {names} never occur in the body",
                fix_hint="restrict the variable in the view body or "
                "remove the output column",
                source=source.name,
                variables=[v.name for v in loose],
            )


# -- SCN002: unrecoverable head variables ------------------------------------------


@rule(
    "SCN002",
    "unrecoverable-head-variable",
    FAMILY_SCENARIO,
    Severity.ERROR,
    "query head variable every covering source projects away",
    "If every inverse rule for a relation carries a Skolem term at some "
    "position, no source exposes that column; a query head variable "
    "there can never be recovered, so no plan returns it.",
)
def check_unrecoverable_head_variable(
    context: ScenarioContext,
) -> Iterator[Diagnostic]:
    head_vars = frozenset(context.query.head.variables())
    reported: set[tuple[str, str]] = set()
    for subgoal in context.query.subgoals:
        exported = exported_position_map(
            context.catalog, subgoal.predicate, subgoal.arity
        )
        if not any(exported):
            # No source covers the relation at all; that is SCN004's
            # finding, not a projection problem.
            continue
        for position, arg in enumerate(subgoal.args):
            if not (isinstance(arg, Variable) and arg in head_vars):
                continue
            if exported[position]:
                continue
            key = (arg.name, subgoal.predicate)
            if key in reported:
                continue
            reported.add(key)
            yield _diagnostic(
                context,
                "SCN002",
                Severity.ERROR,
                f"head variable {arg.name} of query "
                f"{context.query.name!r} is unrecoverable: every source "
                f"covering {subgoal.predicate!r} projects position "
                f"{position} away (Skolem term in all inverse rules)",
                fix_hint=f"add a source exposing column {position} of "
                f"{subgoal.predicate!r}, or drop {arg.name} from the "
                f"query head",
                variable=arg.name,
                predicate=subgoal.predicate,
                position=position,
            )


# -- SCN003: dead sources ----------------------------------------------------------


@rule(
    "SCN003",
    "dead-source",
    FAMILY_SCENARIO,
    Severity.WARNING,
    "catalog source that joins no bucket of the query",
    "A source outside every bucket cannot appear in any plan: it is "
    "catalog noise for this query, or the catalog/query pair has a "
    "typo.",
)
def check_dead_source(context: ScenarioContext) -> Iterator[Diagnostic]:
    alive = {
        source.name
        for members in context.candidates()
        for source in members
    }
    for source in context.catalog.sources:
        if source.name in alive:
            continue
        if context.is_waived("SCN003", source.name):
            continue
        yield _diagnostic(
            context,
            "SCN003",
            Severity.WARNING,
            f"source {source.name!r} enters no bucket of query "
            f"{context.query.name!r}",
            fix_hint="remove the source from this scenario, fix its "
            "view, or waive the finding if the dead weight is "
            "intentional",
            source=source.name,
        )


# -- SCN004: empty buckets ---------------------------------------------------------


@rule(
    "SCN004",
    "empty-bucket",
    FAMILY_SCENARIO,
    Severity.ERROR,
    "query subgoal no source covers",
    "An empty bucket makes the plan space empty: reformulation raises "
    "and the query is unanswerable from the available sources.",
)
def check_empty_bucket(context: ScenarioContext) -> Iterator[Diagnostic]:
    for index, members in enumerate(context.candidates()):
        if members:
            continue
        subgoal = context.query.subgoal(index)
        yield _diagnostic(
            context,
            "SCN004",
            Severity.ERROR,
            f"no source covers subgoal {index} ({subgoal}) of query "
            f"{context.query.name!r}",
            fix_hint="add a source whose view mentions "
            f"{subgoal.predicate!r} with the needed columns exposed",
            bucket=index,
            predicate=subgoal.predicate,
        )


# -- SCN005: redundant views -------------------------------------------------------


def _equivalent_views(
    first: SourceDescription, second: SourceDescription
) -> bool:
    """Equivalence of the view *definitions*, head names aside.

    Containment mappings must match head predicates, and two sources
    necessarily have distinct ones; rename both heads to a common
    placeholder so only the logic is compared.
    """

    def renamed(view: ConjunctiveQuery) -> ConjunctiveQuery:
        return ConjunctiveQuery(Atom("__view__", view.head.args), view.body)

    return are_equivalent(renamed(first.view), renamed(second.view))


def _indistinguishable(
    context: ScenarioContext,
    first: SourceDescription,
    second: SourceDescription,
) -> bool:
    """Are two equivalent-view sources identical to every orderer?"""
    if first.stats != second.stats:
        return False
    if context.model is None:
        return True
    for bucket, members in enumerate(context.candidates()):
        names = {s.name for s in members}
        if first.name not in names or second.name not in names:
            continue
        has_first = context.model.has_extension(bucket, first.name)
        has_second = context.model.has_extension(bucket, second.name)
        if has_first != has_second:
            return False
        if has_first and context.model.extension(
            bucket, first.name
        ) != context.model.extension(bucket, second.name):
            return False
    # No modeled extensions differed: stats equality already decided.
    return True


@rule(
    "SCN005",
    "redundant-view",
    FAMILY_SCENARIO,
    Severity.WARNING,
    "two sources indistinguishable in definition, stats, and extension",
    "Logically equivalent views alone are fine (sources are "
    "incomplete), but when statistics and modeled extensions coincide "
    "too, the duplicate only inflates every bucket and plan space.",
)
def check_redundant_view(context: ScenarioContext) -> Iterator[Diagnostic]:
    # Group by a cheap signature first so the O(n^2) containment tests
    # only run within plausible groups.
    by_signature: dict[tuple[int, tuple[str, ...]], list[SourceDescription]] = {}
    for source in context.catalog.sources:
        signature = (
            source.arity,
            tuple(sorted(a.predicate for a in source.body)),
        )
        by_signature.setdefault(signature, []).append(source)
    for group in by_signature.values():
        for first, second in itertools.combinations(group, 2):
            if not _equivalent_views(first, second):
                continue
            if not _indistinguishable(context, first, second):
                continue
            if context.is_waived(
                "SCN005", f"{first.name}/{second.name}"
            ) or context.is_waived("SCN005", f"{second.name}/{first.name}"):
                continue
            yield _diagnostic(
                context,
                "SCN005",
                Severity.WARNING,
                f"sources {first.name!r} and {second.name!r} are "
                f"redundant: equivalent views, equal statistics"
                + (
                    ", equal modeled extensions"
                    if context.model is not None
                    else ""
                ),
                fix_hint="drop one of the two sources, or give them "
                "distinguishing statistics/extensions",
                first=first.name,
                second=second.name,
            )


# -- SCN006: utility-measure property spot-checks ----------------------------------


def _sample_plans(
    context: ScenarioContext, rng: random.Random
) -> list[QueryPlan]:
    """Up to ``_SAMPLE_PLANS`` concrete plans, deterministically."""
    candidates = context.candidates()
    if any(not members for members in candidates):
        return []
    size = 1
    for members in candidates:
        size *= len(members)
    plans: list[QueryPlan] = []
    if size <= _SAMPLE_PLANS:
        plans.extend(
            QueryPlan(combo)
            for combo in itertools.product(*candidates)
        )
    else:
        seen: set[tuple[str, ...]] = set()
        while len(plans) < _SAMPLE_PLANS:
            combo = tuple(rng.choice(members) for members in candidates)
            plan = QueryPlan(combo)
            if plan.key not in seen:
                seen.add(plan.key)
                plans.append(plan)
    return plans


def _supports_model(context: ScenarioContext, measure: UtilityMeasure) -> bool:
    """Can the measure evaluate this scenario's plans at all?"""
    try:
        plans = _sample_plans(context, random.Random(0))
        if not plans:
            return False
        fresh = measure.new_context()
        measure.evaluate(plans[0], fresh)
        measure.evaluate_slots(context.candidates(), fresh)
    except ReproError:
        return False
    return True


def _check_interval_soundness(
    context: ScenarioContext,
    measure: UtilityMeasure,
    plans: Sequence[QueryPlan],
) -> Iterator[Diagnostic]:
    candidates = context.candidates()
    fresh = measure.new_context()
    interval = measure.evaluate_slots(candidates, fresh)
    for plan in plans:
        value = measure.evaluate(plan, fresh)
        if interval.lo - _EPS <= value <= interval.hi + _EPS:
            continue
        yield _diagnostic(
            context,
            "SCN006",
            Severity.ERROR,
            f"measure {measure.name!r}: interval evaluation is unsound: "
            f"evaluate_slots gave [{interval.lo:g}, {interval.hi:g}] but "
            f"plan {plan} evaluates to {value:g}",
            fix_hint="evaluate_slots must bound evaluate() for every "
            "concrete plan of the slots",
            measure=measure.name,
            plan=list(plan.key),
        )
        return  # one counterexample per measure is enough


def _check_full_monotonicity(
    context: ScenarioContext,
    measure: UtilityMeasure,
    plans: Sequence[QueryPlan],
    rng: random.Random,
) -> Iterator[Diagnostic]:
    candidates = context.candidates()
    try:
        keys = [
            {
                source.name: measure.source_preference_key(bucket, source)
                for source in members
            }
            for bucket, members in enumerate(candidates)
        ]
    except UtilityError as exc:
        yield _diagnostic(
            context,
            "SCN006",
            Severity.ERROR,
            f"measure {measure.name!r} claims full monotonicity but "
            f"defines no source preference key ({exc})",
            fix_hint="implement source_preference_key or clear "
            "is_fully_monotonic",
            measure=measure.name,
        )
        return
    fresh = measure.new_context()
    for plan in plans:
        bucket = rng.randrange(len(candidates))
        members = candidates[bucket]
        if len(members) < 2:
            continue
        alternative = rng.choice(members)
        current = plan.sources[bucket]
        if alternative.name == current.name:
            continue
        # The preferred source must never yield the worse plan.
        delta_key = keys[bucket][alternative.name] - keys[bucket][current.name]
        if delta_key == 0:
            continue
        swapped = QueryPlan(
            plan.sources[:bucket] + (alternative,) + plan.sources[bucket + 1 :]
        )
        delta_utility = measure.evaluate(swapped, fresh) - measure.evaluate(
            plan, fresh
        )
        if delta_key > 0 and delta_utility < -_EPS:
            yield _diagnostic(
                context,
                "SCN006",
                Severity.ERROR,
                f"measure {measure.name!r}: full monotonicity violated: "
                f"in bucket {bucket}, {alternative.name!r} is preferred "
                f"over {current.name!r} (key {delta_key:+g}) yet swapping "
                f"it into plan {plan} lowers utility by {-delta_utility:g}",
                fix_hint="clear is_fully_monotonic or fix the "
                "preference key",
                measure=measure.name,
                bucket=bucket,
            )
            return


def _check_context_freeness(
    context: ScenarioContext,
    measure: UtilityMeasure,
    plans: Sequence[QueryPlan],
) -> Iterator[Diagnostic]:
    if len(plans) < 2:
        return
    fresh = measure.new_context()
    loaded = measure.new_context()
    for executed in plans[: max(1, len(plans) // 4)]:
        loaded.record(executed)
    for plan in plans:
        before = measure.evaluate(plan, fresh)
        after = measure.evaluate(plan, loaded)
        if abs(before - after) <= _EPS:
            continue
        yield _diagnostic(
            context,
            "SCN006",
            Severity.ERROR,
            f"measure {measure.name!r} claims context freeness but plan "
            f"{plan} evaluates to {before:g} on an empty context and "
            f"{after:g} after {len(loaded)} executions",
            fix_hint="clear context_free (and re-derive "
            "has_diminishing_returns)",
            measure=measure.name,
            plan=list(plan.key),
        )
        return


def _check_diminishing_returns(
    context: ScenarioContext,
    measure: UtilityMeasure,
    plans: Sequence[QueryPlan],
) -> Iterator[Diagnostic]:
    if measure.context_free or len(plans) < 2:
        return  # trivially diminishing; nothing to sample
    fresh = measure.new_context()
    loaded = measure.new_context()
    for executed in plans[: max(1, len(plans) // 4)]:
        loaded.record(executed)
    for plan in plans:
        before = measure.evaluate(plan, fresh)
        after = measure.evaluate(plan, loaded)
        if after <= before + _EPS:
            continue
        yield _diagnostic(
            context,
            "SCN006",
            Severity.ERROR,
            f"measure {measure.name!r} claims diminishing returns but "
            f"plan {plan} improves from {before:g} to {after:g} as the "
            f"executed set grows",
            fix_hint="clear has_diminishing_returns (Streamer must not "
            "run on this measure)",
            measure=measure.name,
            plan=list(plan.key),
        )
        return


@rule(
    "SCN006",
    "measure-property",
    FAMILY_SCENARIO,
    Severity.ERROR,
    "utility measure's declared structural flags fail a sampled check",
    "The orderers trust is_fully_monotonic / context_free / "
    "has_diminishing_returns blindly (Greedy and Streamer are unsound "
    "without them); a sampled counterexample proves a flag is a lie.",
)
def check_measure_properties(context: ScenarioContext) -> Iterator[Diagnostic]:
    rng = random.Random(0)
    plans = _sample_plans(context, rng)
    if not plans:
        return
    for measure in context.measures:
        if not _supports_model(context, measure):
            continue
        yield from _check_interval_soundness(context, measure, plans)
        if measure.is_fully_monotonic:
            yield from _check_full_monotonicity(context, measure, plans, rng)
        if measure.context_free:
            yield from _check_context_freeness(context, measure, plans)
        if measure.has_diminishing_returns:
            yield from _check_diminishing_returns(context, measure, plans)


# -- SCN007: the greedy consequence of full monotonicity ---------------------------


def _greedy_plan_by_keys(
    context: ScenarioContext, measure: UtilityMeasure
) -> Optional[QueryPlan]:
    """The plan Greedy would build: per bucket, the best preference key.

    Ties break on source name so the check is deterministic.  Raises
    :class:`UtilityError` when the measure defines no preference key —
    callers skip then, because SCN006 already reports that mismatch.
    """
    choices = []
    for bucket, members in enumerate(context.candidates()):
        if not members:
            return None
        choices.append(
            max(
                members,
                key=lambda source: (
                    measure.source_preference_key(bucket, source),
                    source.name,
                ),
            )
        )
    return QueryPlan(tuple(choices))


@rule(
    "SCN007",
    "monotonicity-misdeclaration",
    FAMILY_SCENARIO,
    Severity.ERROR,
    "greedy-by-preference-key plan is beaten despite is_fully_monotonic",
    "SCN006 spot-checks single swaps; this rule checks the exchange "
    "argument Greedy actually stands on: under full monotonicity the "
    "per-bucket best preference keys compose into an unbeaten plan, "
    "and slots restricted to exactly that plan leave evaluate_slots "
    "a point interval around its utility.",
)
def check_monotonicity_misdeclaration(
    context: ScenarioContext,
) -> Iterator[Diagnostic]:
    rng = random.Random(0)
    plans = _sample_plans(context, rng)
    if not plans:
        return
    for measure in context.measures:
        if not measure.is_fully_monotonic:
            continue
        if not _supports_model(context, measure):
            continue
        try:
            greedy = _greedy_plan_by_keys(context, measure)
        except UtilityError:
            continue  # no preference key at all: SCN006's finding
        if greedy is None:
            continue
        fresh = measure.new_context()
        greedy_value = measure.evaluate(greedy, fresh)
        for plan in plans:
            value = measure.evaluate(plan, fresh)
            if value <= greedy_value + _EPS:
                continue
            yield _diagnostic(
                context,
                "SCN007",
                Severity.ERROR,
                f"measure {measure.name!r} misdeclares full "
                f"monotonicity: greedy-by-key plan {greedy} has utility "
                f"{greedy_value:g} but sampled plan {plan} reaches "
                f"{value:g}",
                fix_hint="clear is_fully_monotonic or fix "
                "source_preference_key; Greedy would emit a "
                "suboptimal first plan here",
                measure=measure.name,
                greedy=list(greedy.key),
                better=list(plan.key),
            )
            break  # one counterexample per measure is enough
        else:
            # Unbeaten: the singleton restriction must collapse onto it.
            restricted = tuple((source,) for source in greedy.sources)
            interval = measure.evaluate_slots(restricted, fresh)
            if not (
                interval.lo - _EPS <= greedy_value <= interval.hi + _EPS
            ):
                yield _diagnostic(
                    context,
                    "SCN007",
                    Severity.ERROR,
                    f"measure {measure.name!r}: slots restricted to the "
                    f"greedy plan {greedy} evaluate to "
                    f"[{interval.lo:g}, {interval.hi:g}], which misses "
                    f"the plan's own utility {greedy_value:g}",
                    fix_hint="evaluate_slots on singleton slots must "
                    "bound the one remaining plan; interval pruning "
                    "reads this bound",
                    measure=measure.name,
                    greedy=list(greedy.key),
                )

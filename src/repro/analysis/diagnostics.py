"""The shared diagnostics vocabulary of the static-analysis layer.

Both rule families — the scenario linter over catalogs/queries and the
AST lint pass over the codebase — report their findings as
:class:`Diagnostic` records: rule id, severity, location, message, and
an optional fix hint.  A diagnostic also knows how to compute a stable
:meth:`~Diagnostic.fingerprint` so known findings can be parked in a
baseline file (:mod:`repro.analysis.baseline`) without pinning line
numbers.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping


class Severity(enum.IntEnum):
    """Finding severities, ordered so comparisons mean what they say."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def from_name(cls, name: str) -> "Severity":
        try:
            return cls[name.strip().upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {name!r}; expected one of "
                f"{', '.join(s.name.lower() for s in cls)}"
            ) from None

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Location:
    """Where a finding points.

    For code findings ``file`` is a path and ``line``/``column`` are
    1-based source coordinates.  For scenario findings ``file`` is the
    scenario name (e.g. ``movies``) and ``line`` stays 0 — scenarios
    are objects, not text.
    """

    file: str
    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        if self.line:
            if self.column:
                return f"{self.file}:{self.line}:{self.column}"
            return f"{self.file}:{self.line}"
        return self.file


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule at one location."""

    rule: str
    severity: Severity
    message: str
    location: Location
    fix_hint: str = ""
    #: Which rule family produced this: ``code`` or ``scenario``.
    family: str = "code"
    #: Extra structured context (plan keys, source names, ...).
    data: Mapping[str, object] = field(default_factory=dict)

    def fingerprint(self) -> str:
        """Stable identity for baseline matching.

        Deliberately excludes line/column so a finding survives
        unrelated edits above it; includes the file and the message so
        two identical mistakes in different places stay distinct.
        """
        payload = f"{self.rule}\x1f{self.location.file}\x1f{self.message}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def format(self, *, show_hint: bool = True) -> str:
        text = (
            f"{self.location}: {self.rule} {self.severity}: {self.message}"
        )
        if show_hint and self.fix_hint:
            text += f"  [hint: {self.fix_hint}]"
        return text

    def as_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "rule": self.rule,
            "severity": str(self.severity),
            "family": self.family,
            "file": self.location.file,
            "line": self.location.line,
            "column": self.location.column,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }
        if self.fix_hint:
            payload["fix_hint"] = self.fix_hint
        if self.data:
            payload["data"] = dict(self.data)
        return payload

    def with_severity(self, severity: Severity) -> "Diagnostic":
        return replace(self, severity=severity)

    def __str__(self) -> str:
        return self.format()


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> list[Diagnostic]:
    """Canonical order: by file, then line/column, then rule id."""
    return sorted(
        diagnostics,
        key=lambda d: (
            d.location.file,
            d.location.line,
            d.location.column,
            d.rule,
            d.message,
        ),
    )


def max_severity(diagnostics: Iterable[Diagnostic]) -> Severity | None:
    """The highest severity present, or None for an empty run."""
    best: Severity | None = None
    for diagnostic in diagnostics:
        if best is None or diagnostic.severity > best:
            best = diagnostic.severity
    return best

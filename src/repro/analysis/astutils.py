"""Shared AST plumbing for the code-rule family.

A :class:`CodeModule` bundles a parsed module with its source text and
the per-line suppression directives.  Suppressions use the form::

    risky_call()  # lint: allow[lock-discipline] reason...

naming the rule by slug or id; the directive may sit on the flagged
line or on the line directly above it.  Rules never look at
suppressions themselves — the runner filters centrally so every rule
gets them for free.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from typing import Iterator, Optional

from repro.errors import AnalysisError

#: ``# lint: allow[rule, rule2] optional free-text reason``
_ALLOW_RE = re.compile(r"#\s*lint:\s*allow\[([^\]]+)\]")


@dataclass
class CodeModule:
    """One parsed Python module plus its lint-relevant source context."""

    path: str
    source: str
    tree: ast.Module
    #: line number -> frozenset of allowed rule ids/slugs on that line.
    allows: dict[int, frozenset[str]] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str, path: str = "<string>") -> "CodeModule":
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            raise AnalysisError(
                f"cannot parse {path}: {exc.msg} (line {exc.lineno})"
            ) from exc
        return cls(path, source, tree, _collect_allows(source))

    @classmethod
    def from_file(cls, path: str) -> "CodeModule":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            raise AnalysisError(f"cannot read {path}: {exc}") from exc
        return cls.from_source(source, path)

    def allowed(self, line: int, rule_id: str, slug: str) -> bool:
        """Is the rule suppressed at *line* (same line or the one above)?"""
        for candidate in (line, line - 1):
            names = self.allows.get(candidate)
            if names and (rule_id in names or slug in names):
                return True
        return False


def _collect_allows(source: str) -> dict[int, frozenset[str]]:
    """Map line numbers to the rule names allowed there.

    Uses the tokenizer rather than a per-line regex so directives
    inside string literals don't count as suppressions.
    """
    allows: dict[int, frozenset[str]] = {}
    try:
        tokens = tokenize.generate_tokens(StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _ALLOW_RE.search(token.string)
            if match is None:
                continue
            names = frozenset(
                name.strip() for name in match.group(1).split(",") if name.strip()
            )
            if names:
                line = token.start[0]
                allows[line] = allows.get(line, frozenset()) | names
    except tokenize.TokenError:
        # A tokenizer hiccup only costs suppressions, not findings.
        pass
    return allows


# -- small AST helpers ------------------------------------------------------------


def attribute_chain(node: ast.AST) -> Optional[tuple[str, ...]]:
    """``self.registry.lock`` -> ("self", "registry", "lock"); None otherwise."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def self_attribute(node: ast.AST) -> Optional[str]:
    """The attribute name when *node* is exactly ``self.<attr>``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def is_lock_name(name: str) -> bool:
    """Does an attribute name look like a lock/condition/semaphore?"""
    lowered = name.lower()
    return "lock" in lowered or "semaphore" in lowered or "cond" in lowered


def lock_context_attr(item: ast.withitem) -> Optional[tuple[str, ...]]:
    """The ``self.…lock`` chain of a with-item, if it guards a lock."""
    chain = attribute_chain(item.context_expr)
    if chain and chain[0] == "self" and len(chain) >= 2 and is_lock_name(chain[-1]):
        return chain
    return None


def function_defs(node: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """All function definitions in *node*, nested ones included."""
    for child in ast.walk(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield child


def class_defs(tree: ast.Module) -> Iterator[ast.ClassDef]:
    for child in ast.walk(tree):
        if isinstance(child, ast.ClassDef):
            yield child


def base_names(cls: ast.ClassDef) -> tuple[str, ...]:
    """The textual names of a class's bases (last attribute segment)."""
    names = []
    for base in cls.bases:
        chain = attribute_chain(base)
        if chain:
            names.append(chain[-1])
        elif isinstance(base, ast.Name):
            names.append(base.id)
    return tuple(names)


def has_yield(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Does the function body itself yield (nested defs excluded)?"""
    for node in _walk_own_body(func):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def first_yield_line(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Optional[int]:
    """Line of the function's first own yield, or None."""
    best: Optional[int] = None
    for node in _walk_own_body(func):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if best is None or node.lineno < best:
                best = node.lineno
    return best


def _walk_own_body(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Walk a function's body without descending into nested defs."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def names_in(node: ast.AST) -> set[str]:
    """Every bare name referenced anywhere under *node*."""
    return {
        child.id for child in ast.walk(node) if isinstance(child, ast.Name)
    }


def calls_in(node: ast.AST) -> Iterator[ast.Call]:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child

"""Reporters: the same diagnostics as human text or machine JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import Optional, Sequence

from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    max_severity,
    sort_diagnostics,
)

TOOL_NAME = "repro-lint"


def summarize(diagnostics: Sequence[Diagnostic]) -> str:
    """``2 errors, 1 warning`` — or ``no findings``."""
    if not diagnostics:
        return "no findings"
    counts = Counter(d.severity for d in diagnostics)
    parts = []
    for severity in sorted(counts, reverse=True):
        n = counts[severity]
        noun = str(severity) + ("s" if n != 1 else "")
        parts.append(f"{n} {noun}")
    return ", ".join(parts)


def render_text(
    diagnostics: Sequence[Diagnostic],
    *,
    suppressed: int = 0,
    show_hints: bool = True,
) -> str:
    """One finding per line, canonical order, summary trailer."""
    lines = [
        d.format(show_hint=show_hints) for d in sort_diagnostics(diagnostics)
    ]
    trailer = summarize(diagnostics)
    if suppressed:
        trailer += f" ({suppressed} suppressed by baseline)"
    lines.append(trailer)
    return "\n".join(lines)


def render_json(
    diagnostics: Sequence[Diagnostic],
    *,
    suppressed: int = 0,
    families: Sequence[str] = (),
    targets: Sequence[str] = (),
) -> str:
    """The full machine-readable report (stable key order)."""
    ordered = sort_diagnostics(diagnostics)
    counts = Counter(str(d.severity) for d in ordered)
    worst: Optional[Severity] = max_severity(ordered)
    payload = {
        "tool": TOOL_NAME,
        "families": list(families),
        "targets": list(targets),
        "summary": {
            "total": len(ordered),
            "by_severity": {str(s): counts.get(str(s), 0) for s in Severity},
            "max_severity": str(worst) if worst is not None else None,
            "suppressed_by_baseline": suppressed,
        },
        "diagnostics": [d.as_dict() for d in ordered],
    }
    return json.dumps(payload, indent=2, sort_keys=False)

"""Reporters: the same diagnostics as text, JSON, or SARIF 2.1.0."""

from __future__ import annotations

import json
from collections import Counter
from typing import Optional, Sequence

from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    max_severity,
    sort_diagnostics,
)

TOOL_NAME = "repro-lint"


def summarize(diagnostics: Sequence[Diagnostic]) -> str:
    """``2 errors, 1 warning`` — or ``no findings``."""
    if not diagnostics:
        return "no findings"
    counts = Counter(d.severity for d in diagnostics)
    parts = []
    for severity in sorted(counts, reverse=True):
        n = counts[severity]
        noun = str(severity) + ("s" if n != 1 else "")
        parts.append(f"{n} {noun}")
    return ", ".join(parts)


def render_text(
    diagnostics: Sequence[Diagnostic],
    *,
    suppressed: int = 0,
    show_hints: bool = True,
) -> str:
    """One finding per line, canonical order, summary trailer."""
    lines = [
        d.format(show_hint=show_hints) for d in sort_diagnostics(diagnostics)
    ]
    trailer = summarize(diagnostics)
    if suppressed:
        trailer += f" ({suppressed} suppressed by baseline)"
    lines.append(trailer)
    return "\n".join(lines)


def render_json(
    diagnostics: Sequence[Diagnostic],
    *,
    suppressed: int = 0,
    families: Sequence[str] = (),
    targets: Sequence[str] = (),
) -> str:
    """The full machine-readable report (stable key order)."""
    ordered = sort_diagnostics(diagnostics)
    counts = Counter(str(d.severity) for d in ordered)
    worst: Optional[Severity] = max_severity(ordered)
    payload = {
        "tool": TOOL_NAME,
        "families": list(families),
        "targets": list(targets),
        "summary": {
            "total": len(ordered),
            "by_severity": {str(s): counts.get(str(s), 0) for s in Severity},
            "max_severity": str(worst) if worst is not None else None,
            "suppressed_by_baseline": suppressed,
        },
        "diagnostics": [d.as_dict() for d in ordered],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Severity -> SARIF ``level``. SARIF has no "info"; "note" is its
#: informational tier.
_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _sarif_result(diagnostic: Diagnostic) -> dict:
    location: dict = {
        "physicalLocation": {
            "artifactLocation": {"uri": diagnostic.location.file},
        }
    }
    if diagnostic.location.line:
        region: dict = {"startLine": diagnostic.location.line}
        if diagnostic.location.column:
            region["startColumn"] = diagnostic.location.column
        location["physicalLocation"]["region"] = region
    result: dict = {
        "ruleId": diagnostic.rule,
        "level": _SARIF_LEVELS[diagnostic.severity],
        "message": {"text": diagnostic.message},
        "locations": [location],
        "partialFingerprints": {
            # The same fingerprint the baseline machinery uses, so a
            # SARIF consumer's dedup matches `--baseline` exactly.
            "reproLint/v1": diagnostic.fingerprint(),
        },
        "properties": {"family": diagnostic.family},
    }
    if diagnostic.fix_hint:
        result["properties"]["fixHint"] = diagnostic.fix_hint
    return result


def render_sarif(
    diagnostics: Sequence[Diagnostic],
    *,
    families: Sequence[str] = (),
    registry=None,
) -> str:
    """The diagnostics as a single-run SARIF 2.1.0 log.

    The rule catalog for ``tool.driver.rules`` comes from *registry*
    (default: the process-wide :data:`DEFAULT_REGISTRY`), restricted to
    *families* when given so the log only advertises rules the run
    could actually have fired.
    """
    if registry is None:
        from repro.analysis.registry import DEFAULT_REGISTRY

        registry = DEFAULT_REGISTRY
    wanted = set(families)
    rules = [
        {
            "id": rule.id,
            "name": rule.slug,
            "shortDescription": {"text": rule.summary},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {
                "level": _SARIF_LEVELS[rule.severity],
            },
            "properties": {"family": rule.family},
        }
        for rule in registry
        if not wanted or rule.family in wanted
    ]
    log = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": (
                            "https://example.invalid/repro-lint"
                        ),
                        "rules": rules,
                    }
                },
                "results": [
                    _sarif_result(d) for d in sort_diagnostics(diagnostics)
                ],
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=False)

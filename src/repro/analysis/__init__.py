"""Two-level static analysis for the repro codebase and its scenarios.

The package hosts a shared diagnostics core (rule registry, severities,
reporters, baseline files) and three rule families:

* the **scenario linter** (:mod:`repro.analysis.scenario`) checks a
  source catalog against a user query — unsafe views, unrecoverable
  head variables, dead sources, empty buckets, redundant views, and
  sampled spot-checks of utility-measure property flags;
* the **code linter** (:mod:`repro.analysis.code_rules`) enforces this
  repo's concurrency and contract discipline on the source tree —
  lock discipline, the lazy-orderer contract, production asserts,
  swallowed broad excepts, and mutable default arguments;
* the **concurrency analyzer** (:mod:`repro.analysis.concurrency`)
  joins every module into one program model and reports lock-order
  deadlock cycles, thread-escaping unguarded state, blocking calls
  under held mutexes, and journal/wire contract violations.

Entry points: ``repro lint`` on the command line, or
:func:`repro.analysis.runner.run_lint` programmatically.
"""

from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.diagnostics import (
    Diagnostic,
    Location,
    Severity,
    max_severity,
    sort_diagnostics,
)
from repro.analysis.registry import (
    DEFAULT_REGISTRY,
    FAMILY_CODE,
    FAMILY_CONCURRENCY,
    FAMILY_SCENARIO,
    Rule,
    RuleRegistry,
)
from repro.analysis.reporting import (
    render_json,
    render_sarif,
    render_text,
    summarize,
)
from repro.analysis.runner import (
    BUILTIN_SCENARIOS,
    LintResult,
    lint_code,
    lint_concurrency,
    lint_concurrency_sources,
    lint_scenario,
    lint_scenarios,
    lint_source,
    run_lint,
)
from repro.analysis.scenario import ScenarioContext

__all__ = [
    "BUILTIN_SCENARIOS",
    "DEFAULT_REGISTRY",
    "Diagnostic",
    "FAMILY_CODE",
    "FAMILY_CONCURRENCY",
    "FAMILY_SCENARIO",
    "LintResult",
    "Location",
    "Rule",
    "RuleRegistry",
    "ScenarioContext",
    "Severity",
    "apply_baseline",
    "lint_code",
    "lint_concurrency",
    "lint_concurrency_sources",
    "lint_scenario",
    "lint_scenarios",
    "lint_source",
    "load_baseline",
    "max_severity",
    "render_json",
    "render_sarif",
    "render_text",
    "run_lint",
    "sort_diagnostics",
    "summarize",
    "write_baseline",
]

"""CON004/CON005: static contract conformance against the live schemas.

Rather than keeping a parallel copy of the contracts, both checkers
import the real tables at check time — :data:`EVENT_SCHEMA` from
:mod:`repro.observability.journal` and :data:`RECORD_TYPES` from
:mod:`repro.service.protocol` — so the linter can never drift from the
runtime validators.

* ``CON004 journal-contract`` — every ``journal.emit("<event>", ...)``
  call site must name a schema event and pass its required fields as
  literal keywords.  Sites with a dynamic event name or ``**kwargs``
  are skipped (the runtime validator owns those).
* ``CON005 wire-record-contract`` — every ``{"type": ...}`` dict
  literal in a wire-aware module (under ``service/``/``cluster/``, or
  importing ``repro.service.protocol``) must name a known record type
  and carry that type's required keys.  Dicts with dynamic keys are
  held to the type check only.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.concurrency.model import ProgramModel
from repro.analysis.diagnostics import Diagnostic, Location, Severity
from repro.analysis.registry import FAMILY_CONCURRENCY, rule


def _event_schema() -> dict[str, frozenset[str]]:
    from repro.observability.journal import EVENT_SCHEMA

    return EVENT_SCHEMA


def _record_types() -> dict[str, frozenset[str]]:
    from repro.service.protocol import RECORD_TYPES

    return RECORD_TYPES


@rule(
    "CON004",
    "journal-contract",
    FAMILY_CONCURRENCY,
    Severity.ERROR,
    "journal.emit call site violates EVENT_SCHEMA",
    "The journal schema is a contract with external log tooling; an "
    "unknown event type or a missing required field raises at runtime "
    "on exactly the code path that is already failing — catch it "
    "statically instead.",
)
def check_journal_contract(model: ProgramModel) -> Iterator[Diagnostic]:
    schema = _event_schema()
    for module in model.modules:
        for site in module.emits:
            if site.event is None:
                continue  # dynamic event name: runtime validator owns it
            required = schema.get(site.event)
            if required is None:
                yield Diagnostic(
                    rule="CON004",
                    severity=Severity.ERROR,
                    message=(
                        f"journal event {site.event!r} is not in "
                        f"EVENT_SCHEMA (emitted via {site.receiver})"
                    ),
                    location=Location(module.path, site.line),
                    fix_hint="add the event type to EVENT_SCHEMA or fix "
                    "the typo; the vocabulary is closed by design",
                    family=FAMILY_CONCURRENCY,
                    data={"event": site.event},
                )
                continue
            if site.has_dynamic:
                continue  # **kwargs may supply the rest
            missing = sorted(
                required - site.literal_kwargs - {"request_id"}
            )
            if missing:
                yield Diagnostic(
                    rule="CON004",
                    severity=Severity.ERROR,
                    message=(
                        f"journal event {site.event!r} emitted without "
                        f"required field(s) {', '.join(missing)}"
                    ),
                    location=Location(module.path, site.line),
                    fix_hint="pass every field EVENT_SCHEMA requires as "
                    "a literal keyword argument",
                    family=FAMILY_CONCURRENCY,
                    data={"event": site.event, "missing": missing},
                )


def _wire_aware(module) -> bool:
    normalized = module.path.replace("\\", "/")
    if "/service/" in normalized or "/cluster/" in normalized:
        return True
    return "repro.service.protocol" in module.imports


@rule(
    "CON005",
    "wire-record-contract",
    FAMILY_CONCURRENCY,
    Severity.ERROR,
    "wire-protocol record literal violates the record-type table",
    "Frontend, router, and workers speak one JSON-lines protocol; a "
    "record literal with an unknown type or a missing required key is "
    "a frame every peer will reject (or worse, misroute).",
)
def check_wire_record_contract(model: ProgramModel) -> Iterator[Diagnostic]:
    table = _record_types()
    for module in model.modules:
        if not _wire_aware(module):
            continue
        for record in module.records:
            required = table.get(record.type_value)
            if required is None:
                yield Diagnostic(
                    rule="CON005",
                    severity=Severity.ERROR,
                    message=(
                        f"wire record literal has unknown type "
                        f"{record.type_value!r}; known types: "
                        f"{', '.join(sorted(table))}"
                    ),
                    location=Location(module.path, record.line),
                    fix_hint="use a protocol.py constructor "
                    "(batch_record, error_record, ...) instead of a "
                    "hand-rolled literal",
                    family=FAMILY_CONCURRENCY,
                    data={"type": record.type_value},
                )
                continue
            if record.keys is None:
                continue  # dynamic keys may supply the rest
            missing = sorted(required - record.keys)
            if missing:
                yield Diagnostic(
                    rule="CON005",
                    severity=Severity.ERROR,
                    message=(
                        f"wire record literal of type "
                        f"{record.type_value!r} is missing required "
                        f"key(s) {', '.join(missing)}"
                    ),
                    location=Location(module.path, record.line),
                    fix_hint="include every key RECORD_TYPES requires, "
                    "or build the record through protocol.py",
                    family=FAMILY_CONCURRENCY,
                    data={
                        "type": record.type_value,
                        "missing": missing,
                    },
                )

"""Phase 1 of the concurrency pass: per-module fact extraction.

Each module is reduced to a :class:`ModuleFacts` record — classes,
their lock attributes, and per-method summaries of what runs with
which locks held.  Facts are purely syntactic and local to one file;
:mod:`repro.analysis.concurrency.model` later joins them into a
whole-program view (alias resolution, call-graph closure, lock-order
graph).

The extractor deliberately shares COD001's vocabulary (``with
self.<lock>:`` regions, ``self.<attr>`` accesses) but records *where*
and *under which locks* every access, call, and blocking operation
happens, instead of collapsing to a guarded/unguarded bit.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.astutils import (
    CodeModule,
    attribute_chain,
    base_names,
    is_lock_name,
)

#: A dotted attribute path, e.g. ``("self", "registry", "lock")``.
Chain = tuple[str, ...]

#: ``threading`` constructor name -> lock kind.  The kind matters for
#: cycle reporting: re-acquiring an RLock/Condition on the same
#: instance is legal, re-acquiring a plain Lock self-deadlocks, and
#: semaphores are admission bounds rather than mutexes.
LOCK_CTORS = {
    "Lock": "lock",
    "RLock": "rlock",
    "Condition": "condition",
    "Semaphore": "semaphore",
    "BoundedSemaphore": "semaphore",
}

#: Constructors whose instances are internally synchronized; attributes
#: holding one are exempt from CON002 (the object IS the guard).
THREADSAFE_CTORS = frozenset(
    {
        "Queue",
        "LifoQueue",
        "PriorityQueue",
        "SimpleQueue",
        "Event",
        "Barrier",
        "deque",
        *LOCK_CTORS,
    }
)

#: Attribute-call names treated as potentially long-blocking I/O.
_SOCKET_BLOCKERS = frozenset(
    {"recv", "recv_into", "accept", "sendall", "readline", "connect",
     "create_connection"}
)

#: Receiver-name fragments that mark a ``.join()`` target as a
#: thread/process handle rather than a string.
_JOINABLE_FRAGMENTS = ("thread", "worker", "proc", "producer", "consumer")


@dataclass(frozen=True)
class Acquisition:
    """One lock acquisition site (``with`` item or ``.acquire()``)."""

    chain: Chain
    line: int
    held: tuple[Chain, ...]


@dataclass(frozen=True)
class Access:
    """One ``self.<attr>`` access with the locks held at that point."""

    attr: str
    line: int
    is_write: bool
    held: tuple[Chain, ...]


@dataclass(frozen=True)
class CallSite:
    """One call, encoded for later whole-program resolution.

    ``callee`` uses a small tag vocabulary:

    * ``("self", "m")`` / ``("self", "attr.m")`` — method through self;
    * ``("@local", "Type", "m")`` — method on a local whose constructor
      ran in the same function;
    * ``("@name", "f")`` — bare-name call (module function, sibling
      nested def, or class constructor).
    """

    callee: Chain
    line: int
    held: tuple[Chain, ...]
    #: Positional/keyword args that are themselves attribute chains
    #: (``registry=self.registry``) — keyed by position int or kw name.
    arg_chains: tuple[tuple[object, Chain], ...] = ()
    #: Args that are direct constructor calls (``registry=MetricRegistry()``).
    arg_ctors: tuple[tuple[object, str], ...] = ()


@dataclass(frozen=True)
class BlockingCall:
    """A potentially long-blocking operation and the locks around it."""

    desc: str
    kind: str
    line: int
    held: tuple[Chain, ...]
    receiver: Optional[Chain] = None


@dataclass(frozen=True)
class ThreadSpawn:
    """A thread entry point registered in this method.

    ``target`` is ``("self", "method")`` (possibly a nested-def
    qualname like ``stream.produce``), ``("self", "attr.method")`` for
    a spawn through a typed attribute, or ``("func", "name")`` for a
    module-level function target.
    """

    target: tuple[str, str]
    line: int


@dataclass
class MethodFacts:
    """Everything phase 2 needs to know about one function body."""

    name: str
    qualname: str
    class_name: str
    path: str
    line: int
    acquisitions: list[Acquisition] = field(default_factory=list)
    accesses: list[Access] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    blocking: list[BlockingCall] = field(default_factory=list)
    spawns: list[ThreadSpawn] = field(default_factory=list)


@dataclass
class ClassFacts:
    """One class: its locks, aliases, and method summaries."""

    name: str
    path: str
    line: int
    bases: tuple[str, ...] = ()
    #: attr -> lock kind, for locks constructed in this class.
    lock_attrs: dict[str, str] = field(default_factory=dict)
    #: attr -> __init__ parameter it aliases (``self._lock = lock``).
    param_attrs: dict[str, str] = field(default_factory=dict)
    #: attr -> class name of the constructor assigned to it.
    attr_types: dict[str, str] = field(default_factory=dict)
    #: attrs holding internally-synchronized objects (queues, events).
    threadsafe_attrs: set[str] = field(default_factory=set)
    #: method/property name -> own lock attr it returns.
    lock_props: dict[str, str] = field(default_factory=dict)
    #: __init__ parameters after self, in declaration order.
    init_params: tuple[str, ...] = ()
    methods: dict[str, MethodFacts] = field(default_factory=dict)

    def is_thread_subclass(self) -> bool:
        return any(base == "Thread" for base in self.bases)


@dataclass(frozen=True)
class EmitSite:
    """One ``journal.emit(...)`` call site (for CON004)."""

    event: Optional[str]
    literal_kwargs: frozenset[str]
    has_dynamic: bool
    line: int
    receiver: str


@dataclass(frozen=True)
class RecordLiteral:
    """One ``{"type": ...}`` dict literal (for CON005)."""

    type_value: str
    #: Literal string keys, or None when the dict has dynamic parts.
    keys: Optional[frozenset[str]]
    line: int


@dataclass
class ModuleFacts:
    """The phase-1 summary of one parsed module."""

    path: str
    module: CodeModule
    classes: dict[str, ClassFacts] = field(default_factory=dict)
    functions: dict[str, MethodFacts] = field(default_factory=dict)
    emits: list[EmitSite] = field(default_factory=list)
    records: list[RecordLiteral] = field(default_factory=list)
    imports: set[str] = field(default_factory=set)


# -- small helpers ------------------------------------------------------------------


def _ctor_name(node: ast.AST) -> Optional[str]:
    """The constructor name when *node* is ``X(...)``/``threading.X(...)``."""
    if not isinstance(node, ast.Call):
        return None
    chain = attribute_chain(node.func)
    if chain:
        return chain[-1]
    return None


def _ctor_candidates(value: ast.expr) -> list[str]:
    """Constructor names reachable through ``or``/ternary alternatives."""
    names: list[str] = []
    stack = [value]
    while stack:
        node = stack.pop()
        name = _ctor_name(node)
        if name is not None:
            names.append(name)
        elif isinstance(node, ast.IfExp):
            stack.extend((node.body, node.orelse))
        elif isinstance(node, ast.BoolOp):
            stack.extend(node.values)
    return names


def _param_candidates(value: ast.expr, params: set[str]) -> list[str]:
    """__init__ params the RHS may alias (directly or via or/ternary)."""
    found: list[str] = []
    stack = [value]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Name) and node.id in params:
            found.append(node.id)
        elif isinstance(node, ast.IfExp):
            stack.extend((node.body, node.orelse))
        elif isinstance(node, ast.BoolOp):
            stack.extend(node.values)
    return found


def _lockish_chain(node: ast.AST) -> Optional[Chain]:
    """The attribute chain of *node* when its last segment looks lock-ish."""
    chain = attribute_chain(node)
    if chain and len(chain) >= 2 and is_lock_name(chain[-1]):
        return chain
    return None


def _has_timeout(call: ast.Call) -> bool:
    if call.args:
        return True
    return any(kw.arg in ("timeout",) for kw in call.keywords)


def _is_nonblocking(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg in ("timeout",):
            return True
        if kw.arg in ("block", "blocking"):
            if isinstance(kw.value, ast.Constant) and kw.value.value is False:
                return True
    return False


def _queue_like(receiver: Chain, local_types: dict[str, str],
                cls: Optional[ClassFacts]) -> bool:
    last = receiver[-1].lower()
    if "queue" in last or last == "q" or last.endswith("_q"):
        return True
    if receiver[0] == "self" and cls is not None and len(receiver) == 2:
        return cls.attr_types.get(receiver[1], "") in (
            "Queue", "LifoQueue", "PriorityQueue", "SimpleQueue"
        )
    if len(receiver) == 1:
        return local_types.get(receiver[0], "") in (
            "Queue", "LifoQueue", "PriorityQueue", "SimpleQueue"
        )
    return False


def _joinable(receiver: Chain, local_types: dict[str, str]) -> bool:
    last = receiver[-1].lower()
    if any(fragment in last for fragment in _JOINABLE_FRAGMENTS):
        return True
    if len(receiver) == 1:
        return local_types.get(receiver[0], "") in ("Thread", "Process")
    return False


# -- the per-function walker --------------------------------------------------------


class _FunctionWalker:
    """Walks one function body tracking the set of held locks.

    ``with <lock>:`` regions are precise; a statement-level
    ``.acquire()`` conservatively holds to the end of the enclosing
    block unless a ``.release()`` on the same chain appears later in
    that block.
    """

    def __init__(
        self,
        facts: MethodFacts,
        sink: dict[str, MethodFacts],
        local_types: dict[str, str],
        class_facts: Optional[ClassFacts],
    ) -> None:
        self.facts = facts
        self.sink = sink
        self.local_types = dict(local_types)
        self.cls = class_facts
        self._held: list[Chain] = []

    # -- held-set plumbing ----------------------------------------------------------

    def _snapshot(self) -> tuple[Chain, ...]:
        return tuple(self._held)

    def _canon(self, chain: Chain) -> Chain:
        """Rewrite a local-rooted chain to carry its receiver type.

        ``run.cond`` where ``run = _SessionRun(...)`` becomes
        ``("@type", "_SessionRun", "cond")`` so phase 2 can resolve it
        without the (extraction-local) variable environment.
        """
        if chain and chain[0] != "self" and chain[0] in self.local_types:
            return ("@type", self.local_types[chain[0]], *chain[1:])
        return chain

    # -- statements -----------------------------------------------------------------

    def walk_body(self, body: list[ast.stmt]) -> None:
        acquired_here: list[Chain] = []
        for stmt in body:
            released = self._walk_stmt(stmt, acquired_here)
            for chain in released:
                if chain in acquired_here:
                    acquired_here.remove(chain)
                    self._held.remove(chain)
        for chain in acquired_here:
            self._held.remove(chain)

    def _walk_stmt(
        self, stmt: ast.stmt, acquired_here: list[Chain]
    ) -> list[Chain]:
        """Walk one statement; returns chains released by it."""
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._walk_nested_def(stmt)
            return []
        if isinstance(stmt, ast.ClassDef):
            return []
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._walk_with(stmt)
            return []
        if isinstance(stmt, (ast.If, ast.While)):
            self._walk_expr(stmt.test)
            # `if not lock.acquire(timeout=...): return` — the success
            # path below holds the lock for the rest of the block.
            for call in self._own_calls(stmt.test):
                chain = attribute_chain(call.func)
                if (
                    chain
                    and len(chain) >= 2
                    and chain[-1] == "acquire"
                    and is_lock_name(chain[-2])
                ):
                    lock = self._canon(chain[:-1])
                    if lock not in self._held:
                        self.facts.acquisitions.append(
                            Acquisition(lock, call.lineno, self._snapshot())
                        )
                        self._held.append(lock)
                        acquired_here.append(lock)
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
            return []
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._walk_expr(stmt.iter)
            self._walk_expr(stmt.target)
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
            return []
        if isinstance(stmt, ast.Try):
            self.walk_body(stmt.body)
            for handler in stmt.handlers:
                self.walk_body(handler.body)
            self.walk_body(stmt.orelse)
            self.walk_body(stmt.finalbody)
            return []
        # Leaf statements: record local constructor types, then walk
        # every expression, then look for explicit acquire/release.
        if isinstance(stmt, ast.Assign):
            ctor = _ctor_name(stmt.value)
            if ctor is not None:
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.local_types[target.id] = ctor
        released: list[Chain] = []
        for node in ast.iter_child_nodes(stmt):
            self._walk_expr(node)
        for call in self._own_calls(stmt):
            chain = attribute_chain(call.func)
            if not chain or len(chain) < 2:
                continue
            if chain[-1] == "acquire" and is_lock_name(chain[-2]):
                lock = self._canon(chain[:-1])
                if lock not in self._held:
                    self.facts.acquisitions.append(
                        Acquisition(lock, call.lineno, self._snapshot())
                    )
                    self._held.append(lock)
                    acquired_here.append(lock)
            elif chain[-1] == "release" and is_lock_name(chain[-2]):
                released.append(self._canon(chain[:-1]))
        return released

    def _walk_with(self, stmt: ast.With | ast.AsyncWith) -> None:
        pushed: list[Chain] = []
        for item in stmt.items:
            self._walk_expr(item.context_expr)
            chain = _lockish_chain(item.context_expr)
            if chain is not None:
                chain = self._canon(chain)
            if chain is not None and chain not in self._held:
                self.facts.acquisitions.append(
                    Acquisition(chain, item.context_expr.lineno,
                                self._snapshot())
                )
                self._held.append(chain)
                pushed.append(chain)
        self.walk_body(stmt.body)
        for chain in pushed:
            self._held.remove(chain)

    def _walk_nested_def(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        """A nested def becomes its own pseudo-method of the class.

        Its body runs when *called* (possibly on another thread), so it
        starts with an empty held set but inherits the enclosing local
        constructor types (closures see those variables).
        """
        qualname = f"{self.facts.qualname}.{node.name}"
        nested = MethodFacts(
            name=node.name,
            qualname=qualname,
            class_name=self.facts.class_name,
            path=self.facts.path,
            line=node.lineno,
        )
        self.sink[qualname] = nested
        walker = _FunctionWalker(nested, self.sink, self.local_types, self.cls)
        walker.walk_body(node.body)

    # -- expressions ----------------------------------------------------------------

    def _own_calls(self, node: ast.AST) -> list[ast.Call]:
        """Calls under *node*, nested function bodies excluded."""
        found: list[ast.Call] = []
        stack: list[ast.AST] = [node]
        while stack:
            current = stack.pop()
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(current, ast.Call):
                found.append(current)
            stack.extend(ast.iter_child_nodes(current))
        return found

    def _walk_expr(self, node: ast.AST) -> None:
        """Record accesses/calls/blocking under *node* (no nested defs)."""
        call_funcs: set[int] = set()
        subscript_writes: set[int] = set()
        stack: list[ast.AST] = [node]
        order: list[ast.AST] = []
        while stack:
            current = stack.pop()
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            order.append(current)
            if isinstance(current, ast.Call):
                if isinstance(current.func, ast.Attribute) or isinstance(
                    current.func, ast.Name
                ):
                    call_funcs.add(id(current.func))
            if isinstance(current, ast.Subscript) and isinstance(
                current.ctx, (ast.Store, ast.Del)
            ):
                subscript_writes.add(id(current.value))
            stack.extend(ast.iter_child_nodes(current))
        for current in order:
            if isinstance(current, ast.Call):
                self._record_call(current)
            elif isinstance(current, ast.Attribute):
                self._record_attribute(current, call_funcs, subscript_writes)

    def _record_attribute(
        self,
        node: ast.Attribute,
        call_funcs: set[int],
        subscript_writes: set[int],
    ) -> None:
        if not (isinstance(node.value, ast.Name) and node.value.id == "self"):
            return
        if id(node) in call_funcs:
            return
        attr = node.attr
        if is_lock_name(attr):
            return
        is_write = isinstance(node.ctx, (ast.Store, ast.Del)) or (
            id(node) in subscript_writes
        )
        self.facts.accesses.append(
            Access(attr, node.lineno, is_write, self._snapshot())
        )

    def _record_call(self, call: ast.Call) -> None:
        func = call.func
        chain = attribute_chain(func)
        held = self._snapshot()
        # Thread spawns.
        spawn = self._spawn_target(call, chain)
        if spawn is not None:
            self.facts.spawns.append(ThreadSpawn(spawn, call.lineno))
        # Blocking operations.
        blocker = self._blocking(call, chain)
        if blocker is not None:
            self.facts.blocking.append(blocker)
        # Call-graph edges.
        callee = self._encode_callee(func, chain)
        if callee is not None:
            arg_chains: list[tuple[object, Chain]] = []
            arg_ctors: list[tuple[object, str]] = []
            for index, arg in enumerate(call.args):
                self._classify_arg(index, arg, arg_chains, arg_ctors)
            for kw in call.keywords:
                if kw.arg is not None:
                    self._classify_arg(kw.arg, kw.value, arg_chains, arg_ctors)
            self.facts.calls.append(
                CallSite(
                    callee,
                    call.lineno,
                    held,
                    tuple(arg_chains),
                    tuple(arg_ctors),
                )
            )

    @staticmethod
    def _classify_arg(
        key: object,
        value: ast.expr,
        arg_chains: list[tuple[object, Chain]],
        arg_ctors: list[tuple[object, str]],
    ) -> None:
        chain = attribute_chain(value)
        if chain is not None and chain[0] == "self":
            arg_chains.append((key, chain))
            return
        ctor = _ctor_name(value)
        if ctor is not None:
            arg_ctors.append((key, ctor))

    def _encode_callee(
        self, func: ast.expr, chain: Optional[Chain]
    ) -> Optional[Chain]:
        if isinstance(func, ast.Name):
            return ("@name", func.id)
        if chain is None:
            return None
        if chain[0] == "self":
            if len(chain) == 2:
                return ("self", chain[1])
            return ("self", ".".join(chain[1:]))
        root = chain[0]
        if root in self.local_types and len(chain) == 2:
            return ("@local", self.local_types[root], chain[1])
        return None

    def _spawn_target(
        self, call: ast.Call, chain: Optional[Chain]
    ) -> Optional[tuple[str, str]]:
        last = chain[-1] if chain else ""
        target_expr: Optional[ast.expr] = None
        if last == "Thread":
            for kw in call.keywords:
                if kw.arg == "target":
                    target_expr = kw.value
        elif last == "submit" and call.args:
            # executor.submit(fn, ...) — only executor-ish receivers.
            receiver = chain[:-1] if chain else ()
            if receiver and "executor" in receiver[-1].lower():
                target_expr = call.args[0]
        if target_expr is None:
            return None
        target_chain = attribute_chain(target_expr)
        if target_chain is not None and target_chain[0] == "self":
            return ("self", ".".join(target_chain[1:]))
        if isinstance(target_expr, ast.Name):
            name = target_expr.id
            # A sibling nested def becomes a pseudo-method qualname.
            qual = f"{self.facts.qualname}.{name}"
            if self.cls is not None and qual in self.sink:
                return ("self", qual)
            return ("func", name)
        return None

    def _blocking(
        self, call: ast.Call, chain: Optional[Chain]
    ) -> Optional[BlockingCall]:
        if not chain:
            return None
        last = chain[-1]
        receiver = chain[:-1]
        held = self._snapshot()
        if chain[0] == "subprocess":
            return BlockingCall(
                f"subprocess.{'.'.join(chain[1:])}()",
                "subprocess", call.lineno, held,
            )
        if last in _SOCKET_BLOCKERS and receiver:
            if last == "connect" and is_lock_name(receiver[-1]):
                return None
            return BlockingCall(
                f"{'.'.join(chain)}()", "socket I/O", call.lineno, held,
                receiver,
            )
        if last in ("get", "put") and receiver:
            if _is_nonblocking(call):
                return None
            if not _queue_like(receiver, self.local_types, self.cls):
                return None
            return BlockingCall(
                f"{'.'.join(chain)}() without timeout",
                "queue wait", call.lineno, held, receiver,
            )
        if last == "join" and receiver and not _has_timeout(call):
            if not _joinable(receiver, self.local_types):
                return None
            return BlockingCall(
                f"{'.'.join(chain)}() without timeout",
                "join", call.lineno, held, receiver,
            )
        if last == "wait" and receiver and not _has_timeout(call):
            # cond.wait() under its own condition is the whole point of
            # a condition variable — only flag it under *other* locks.
            canon_receiver = self._canon(receiver)
            others = tuple(h for h in held if h != canon_receiver)
            if canon_receiver in held and not others:
                return None
            return BlockingCall(
                f"{'.'.join(chain)}() without timeout",
                "wait", call.lineno, others, canon_receiver,
            )
        return None


# -- class- and module-level extraction ---------------------------------------------


def _extract_class(cls: ast.ClassDef, path: str) -> ClassFacts:
    facts = ClassFacts(
        name=cls.name, path=path, line=cls.lineno, bases=base_names(cls)
    )
    init = next(
        (
            stmt
            for stmt in cls.body
            if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"
        ),
        None,
    )
    init_params: set[str] = set()
    if init is not None:
        params = [
            arg.arg
            for arg in (*init.args.posonlyargs, *init.args.args)
            if arg.arg != "self"
        ]
        params.extend(arg.arg for arg in init.args.kwonlyargs)
        facts.init_params = tuple(params)
        init_params = set(params)
    # Attribute classification from every `self.x = ...` in the class.
    for method in cls.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        in_init = method.name == "__init__"
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                attr = target.attr
                ctors = _ctor_candidates(node.value)
                for ctor in ctors:
                    if ctor in LOCK_CTORS:
                        facts.lock_attrs.setdefault(attr, LOCK_CTORS[ctor])
                    elif ctor in THREADSAFE_CTORS:
                        facts.threadsafe_attrs.add(attr)
                    else:
                        facts.attr_types.setdefault(attr, ctor)
                if in_init:
                    for param in _param_candidates(node.value, init_params):
                        facts.param_attrs.setdefault(attr, param)
                if is_lock_name(attr) and attr not in facts.lock_attrs:
                    # A lock-named attr of unknown provenance still
                    # participates in the graph, with unknown kind.
                    if not ctors or all(
                        c not in THREADSAFE_CTORS for c in ctors
                    ):
                        facts.lock_attrs.setdefault(attr, "unknown")
        # Lock-returning helpers: `def lock(self): return self._lock`.
        if not in_init and len(method.body) >= 1:
            returns = [
                stmt
                for stmt in method.body
                if isinstance(stmt, ast.Return) and stmt.value is not None
            ]
            if len(returns) == 1 and len(method.body) <= 2:
                chain = attribute_chain(returns[0].value)
                if (
                    chain is not None
                    and chain[0] == "self"
                    and len(chain) == 2
                    and is_lock_name(chain[1])
                ):
                    facts.lock_props[method.name] = chain[1]
    # Per-method behavioral facts.
    for method in cls.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        m_facts = MethodFacts(
            name=method.name,
            qualname=method.name,
            class_name=cls.name,
            path=path,
            line=method.lineno,
        )
        facts.methods[method.name] = m_facts
        walker = _FunctionWalker(m_facts, facts.methods, {}, facts)
        walker.walk_body(method.body)
    return facts


def _extract_emits(tree: ast.Module, path: str) -> list[EmitSite]:
    emits: list[EmitSite] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if not (
            isinstance(node.func, ast.Attribute) and node.func.attr == "emit"
        ):
            continue
        chain = attribute_chain(node.func)
        receiver = ".".join(chain[:-1]) if chain else ""
        if "journal" not in receiver.lower():
            continue
        event: Optional[str] = None
        if node.args and isinstance(node.args[0], ast.Constant) and isinstance(
            node.args[0].value, str
        ):
            event = node.args[0].value
        has_dynamic = any(kw.arg is None for kw in node.keywords) or (
            bool(node.args) and event is None
        )
        literal_kwargs = frozenset(
            kw.arg for kw in node.keywords if kw.arg is not None
        )
        emits.append(
            EmitSite(event, literal_kwargs, has_dynamic, node.lineno, receiver)
        )
    return emits


def _extract_records(tree: ast.Module, path: str) -> list[RecordLiteral]:
    records: list[RecordLiteral] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Dict):
            continue
        type_value: Optional[str] = None
        keys: set[str] = set()
        dynamic = False
        for key, value in zip(node.keys, node.values):
            if key is None:  # **splat
                dynamic = True
                continue
            if not (isinstance(key, ast.Constant) and isinstance(
                key.value, str
            )):
                dynamic = True
                continue
            keys.add(key.value)
            if key.value == "type":
                if isinstance(value, ast.Constant) and isinstance(
                    value.value, str
                ):
                    type_value = value.value
        if type_value is None:
            continue
        records.append(
            RecordLiteral(
                type_value,
                None if dynamic else frozenset(keys),
                node.lineno,
            )
        )
    return records


def _extract_imports(tree: ast.Module) -> set[str]:
    imports: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            imports.update(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom) and node.module:
            imports.add(node.module)
    return imports


def extract_module(module: CodeModule) -> ModuleFacts:
    """Reduce one parsed module to its concurrency facts."""
    facts = ModuleFacts(path=module.path, module=module)
    for stmt in module.tree.body:
        if isinstance(stmt, ast.ClassDef):
            cls_facts = _extract_class(stmt, module.path)
            facts.classes[cls_facts.name] = cls_facts
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            m_facts = MethodFacts(
                name=stmt.name,
                qualname=stmt.name,
                class_name="",
                path=module.path,
                line=stmt.lineno,
            )
            facts.functions[stmt.name] = m_facts
            walker = _FunctionWalker(m_facts, facts.functions, {}, None)
            walker.walk_body(stmt.body)
    facts.emits = _extract_emits(module.tree, module.path)
    facts.records = _extract_records(module.tree, module.path)
    facts.imports = _extract_imports(module.tree)
    return facts

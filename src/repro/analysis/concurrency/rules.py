"""CON001–CON003: the whole-program concurrency rules.

Each checker receives a resolved
:class:`~repro.analysis.concurrency.model.ProgramModel` and yields
:class:`~repro.analysis.diagnostics.Diagnostic` records:

* ``CON001 potential-deadlock`` — a cycle in the lock-order graph,
  including non-reentrant self-cycles (a plain ``Lock`` re-acquired
  through a call chain while already held);
* ``CON002 unguarded-shared-state`` — an attribute reached from both a
  thread entry point (``Thread(target=...)``, executor submit, Thread
  subclass ``run``) and non-thread code, written on at least one side,
  with no common guarding lock;
* ``CON003 blocking-under-lock`` — socket I/O, subprocess spawns,
  timeout-less queue/join/wait operations while holding a mutex
  (directly or through a resolved call chain).  Semaphores are exempt:
  holding an admission slot across work is their purpose.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.analysis.concurrency.facts import Access, ClassFacts
from repro.analysis.concurrency.model import (
    MUTEX_KINDS,
    ProgramModel,
    Witness,
)
from repro.analysis.diagnostics import Diagnostic, Location, Severity
from repro.analysis.registry import FAMILY_CONCURRENCY, rule


def _diagnostic(
    rule_id: str,
    severity: Severity,
    path: str,
    line: int,
    message: str,
    fix_hint: str = "",
    **data: object,
) -> Diagnostic:
    return Diagnostic(
        rule=rule_id,
        severity=severity,
        message=message,
        location=Location(path, line),
        fix_hint=fix_hint,
        family=FAMILY_CONCURRENCY,
        data=data,
    )


# -- CON001: lock-order cycles ------------------------------------------------------


@rule(
    "CON001",
    "potential-deadlock",
    FAMILY_CONCURRENCY,
    Severity.ERROR,
    "cycle in the whole-program lock-order graph",
    "Two code paths that acquire the same locks in opposite orders "
    "deadlock as soon as they interleave under load; every cycle in "
    "the lock-order graph is a standing invitation.",
)
def check_potential_deadlock(model: ProgramModel) -> Iterator[Diagnostic]:
    for cycle, witnesses in model.lock_cycles():
        first = witnesses[0]
        trail = "; ".join(
            f"{w.text} [{w.file}:{w.line}]" for w in witnesses
        )
        if len(cycle) == 2 and cycle[0] == cycle[1]:
            message = (
                f"non-reentrant lock {cycle[0]} may be re-acquired while "
                f"already held: {trail}"
            )
            hint = (
                "break the re-entry (release before the call, or make "
                "the inner path lock-free) rather than switching to "
                "RLock, which only hides the ordering problem"
            )
        else:
            message = (
                "potential deadlock: lock-order cycle "
                + " -> ".join(cycle)
                + f" ({trail})"
            )
            hint = (
                "impose one global acquisition order for these locks "
                "and release before calling into the other component"
            )
        yield _diagnostic(
            "CON001",
            Severity.ERROR,
            first.file,
            first.line,
            message,
            fix_hint=hint,
            cycle=list(cycle),
            witnesses=[f"{w.file}:{w.line}: {w.text}" for w in witnesses],
        )


# -- CON002: thread-escape analysis -------------------------------------------------


def _thread_entries(model: ProgramModel) -> dict[str, dict[str, int]]:
    """class name -> {method qualname -> spawn line} of thread entries."""
    entries: dict[str, dict[str, int]] = {}
    for cls_name in sorted(model.classes):
        cls = model.classes[cls_name]
        if cls.is_thread_subclass() and "run" in cls.methods:
            entries.setdefault(cls_name, {})["run"] = cls.methods[
                "run"
            ].line
        for qual in sorted(cls.methods):
            method = cls.methods[qual]
            for spawn in method.spawns:
                kind, name = spawn.target
                if kind != "self":
                    continue
                if name in cls.methods:
                    entries.setdefault(cls_name, {}).setdefault(
                        name, spawn.line
                    )
                    continue
                if "." in name:
                    # Spawn through a typed attribute: the target
                    # method belongs to another class.
                    seg0, rest = name.split(".", 1)
                    target_type = cls.attr_types.get(seg0)
                    target = (
                        model.class_of(target_type) if target_type else None
                    )
                    if target is not None and rest in target.methods:
                        entries.setdefault(target.name, {}).setdefault(
                            rest, spawn.line
                        )
    return entries


def _thread_closure(
    model: ProgramModel, cls: ClassFacts, seeds: dict[str, int]
) -> dict[str, int]:
    """Seeds plus every same-class method they transitively call."""
    closure = dict(seeds)
    frontier = sorted(seeds)
    while frontier:
        qual = frontier.pop()
        method = cls.methods.get(qual)
        if method is None:
            continue
        for call in method.calls:
            resolved = model.resolve_call(method, call.callee)
            if (
                resolved is not None
                and resolved[0] == cls.name
                and resolved[1] not in closure
            ):
                closure[resolved[1]] = closure[qual]
                frontier.append(resolved[1])
    return closure


def _locked_nodes(
    model: ProgramModel, cls: ClassFacts, access: Access
) -> frozenset[str]:
    nodes = set()
    for chain in access.held:
        node = model.lock_node(cls, chain)
        if node is not None:
            nodes.add(node)
    return frozenset(nodes)


@rule(
    "CON002",
    "unguarded-shared-state",
    FAMILY_CONCURRENCY,
    Severity.ERROR,
    "attribute shared between a thread target and other code "
    "without a common lock",
    "An attribute written from a Thread/executor target and touched "
    "from non-thread code is cross-thread shared state; without one "
    "lock guarding both sides the interleaving is undefined.",
)
def check_unguarded_shared_state(
    model: ProgramModel,
) -> Iterator[Diagnostic]:
    entries = _thread_entries(model)
    for cls_name in sorted(entries):
        cls = model.classes[cls_name]
        thread_side = _thread_closure(model, cls, entries[cls_name])
        reported: set[str] = set()
        # Gather accesses per attr on each side.
        sides: dict[str, tuple[list, list]] = {}
        for qual in sorted(cls.methods):
            if qual == "__init__" or qual.startswith("__init__."):
                continue
            method = cls.methods[qual]
            is_thread = qual in thread_side
            for access in method.accesses:
                attr = access.attr
                if (
                    attr in cls.threadsafe_attrs
                    or attr in cls.lock_attrs
                ):
                    continue
                bucket = sides.setdefault(attr, ([], []))
                bucket[0 if is_thread else 1].append((qual, access))
        for attr in sorted(sides):
            if attr in reported:
                continue
            thread_accesses, main_accesses = sides[attr]
            if not thread_accesses or not main_accesses:
                continue
            conflict = None
            for t_qual, t_access in thread_accesses:
                for m_qual, m_access in main_accesses:
                    if not (t_access.is_write or m_access.is_write):
                        continue
                    t_locks = _locked_nodes(model, cls, t_access)
                    m_locks = _locked_nodes(model, cls, m_access)
                    if t_locks & m_locks:
                        continue
                    conflict = (t_qual, t_access, m_qual, m_access)
                    break
                if conflict:
                    break
            if conflict is None:
                continue
            t_qual, t_access, m_qual, m_access = conflict
            reported.add(attr)
            # Point at a write; prefer the non-thread side so the fix
            # lands where the reader is looking.
            if m_access.is_write:
                site, other = m_access, t_access
                site_qual, other_qual = m_qual, t_qual
                site_desc = "written"
            else:
                site, other = t_access, m_access
                site_qual, other_qual = t_qual, m_qual
                site_desc = "written on the thread side"
            other_side = (
                "thread-side" if site is m_access else "non-thread"
            )
            yield _diagnostic(
                "CON002",
                Severity.ERROR,
                cls.path,
                site.line,
                f"attribute 'self.{attr}' of class {cls.name!r} is "
                f"{site_desc} in {site_qual}() and accessed from "
                f"{other_side} code in {other_qual}() (line "
                f"{other.line}) without a common lock; {t_qual}() runs "
                f"on a spawned thread",
                fix_hint="guard both sides with the same lock, hand the "
                "value over through a Queue/Event, or confine it to one "
                "thread",
                attribute=attr,
                class_name=cls.name,
                thread_method=t_qual,
                other_method=m_qual,
            )


# -- CON003: blocking under a held lock ---------------------------------------------


def _mutex_held(
    model: ProgramModel,
    cls: Optional[ClassFacts],
    held: tuple,
) -> list[str]:
    nodes = []
    for chain in held:
        node = model.lock_node(cls, chain)
        if node is not None and model.node_kind(node) in MUTEX_KINDS:
            nodes.append(node)
    return sorted(set(nodes))


@rule(
    "CON003",
    "blocking-under-lock",
    FAMILY_CONCURRENCY,
    Severity.WARNING,
    "potentially unbounded blocking call while holding a lock",
    "Socket I/O, subprocess spawns, or timeout-less queue/join/wait "
    "calls under a held mutex stall every other thread that needs the "
    "lock for as long as the peer takes; the critical section's "
    "latency becomes unbounded.",
)
def check_blocking_under_lock(model: ProgramModel) -> Iterator[Diagnostic]:
    for key in sorted(model.methods):
        method = model.methods[key]
        cls = model.class_of(method.class_name)
        for blocker in method.blocking:
            nodes = _mutex_held(model, cls, blocker.held)
            if blocker.receiver is not None:
                receiver_node = model.lock_node(cls, blocker.receiver)
                nodes = [n for n in nodes if n != receiver_node]
            if not nodes:
                continue
            yield _diagnostic(
                "CON003",
                Severity.WARNING,
                method.path,
                blocker.line,
                f"{model.display(key)} blocks on {blocker.desc} "
                f"({blocker.kind}) while holding "
                f"{', '.join(nodes)}",
                fix_hint="move the blocking operation outside the "
                "critical section (snapshot under the lock, do I/O "
                "after), or bound it with a timeout",
                kind=blocker.kind,
                locks=nodes,
            )
        seen_calls: set[tuple[int, str]] = set()
        for call in method.calls:
            if not call.held:
                continue
            nodes = _mutex_held(model, cls, call.held)
            if not nodes:
                continue
            target = model.resolve_call(method, call.callee)
            if target is None or target == key:
                continue
            for desc, origin in sorted(
                model.may_block.get(target, {}).items()
            ):
                dedup = (call.line, desc)
                if dedup in seen_calls:
                    continue
                seen_calls.add(dedup)
                yield _diagnostic(
                    "CON003",
                    Severity.WARNING,
                    method.path,
                    call.line,
                    f"{model.display(key)} holds "
                    f"{', '.join(nodes)} and calls "
                    f"{model.display(target)}, which blocks on {desc} "
                    f"({origin.file}:{origin.line})",
                    fix_hint="release the lock before the call, or "
                    "push the blocking work to a snapshot-then-act "
                    "pattern",
                    locks=nodes,
                    callee=model.display(target),
                )

"""Phase 2 of the concurrency pass: the whole-program model.

Joins every module's :class:`~repro.analysis.concurrency.facts.ModuleFacts`
into one view:

* **lock identity** — attribute aliases are resolved through constructor
  assignments (``self.registry = registry or MetricRegistry()``),
  lock-returning properties (``MetricRegistry.lock`` → ``_lock``), and
  constructor-site parameter passing (``C(lock=self._lock)``), then
  unified with a union-find so every syntactic path to the same lock
  lands on one canonical node;
* **call graph** — call sites are resolved through ``self``, typed
  attributes, typed locals, and module-level names, and per-method
  *may-acquire* / *may-block* summaries are closed under the call
  graph (a bounded fixpoint);
* **lock-order graph** — an edge ``A → B`` means some code path
  acquires B (directly or transitively) while holding A; each edge
  carries human-readable witnesses.

Identity is type-level: all instances of a class share that class's
lock nodes.  That is conservative for ordering (two instances can
deadlock against each other just as one can) but means per-instance
confinement is invisible — see ``docs/analysis.md`` for the known
false-negative classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.analysis.concurrency.facts import (
    Chain,
    ClassFacts,
    MethodFacts,
    ModuleFacts,
)

#: Lock kinds that behave as mutual exclusion for CON003 purposes —
#: blocking while holding a semaphore is admission control, not a
#: critical-section stall.
MUTEX_KINDS = frozenset({"lock", "rlock", "condition", "unknown"})

#: A method key: ("ClassName", "qualname") or ("", "function_name").
MethodKey = tuple[str, str]


@dataclass(frozen=True)
class Witness:
    """One human-readable piece of evidence for a graph edge."""

    file: str
    line: int
    text: str


@dataclass
class LockOrderEdge:
    """``held`` was held while ``acquired`` was taken somewhere."""

    held: str
    acquired: str
    witnesses: list[Witness] = field(default_factory=list)


class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict[str, str] = {}

    def find(self, key: str) -> str:
        parent = self._parent.get(key, key)
        if parent == key:
            return key
        root = self.find(parent)
        self._parent[key] = root
        return root

    def union(self, winner: str, other: str) -> None:
        root_w, root_o = self.find(winner), self.find(other)
        if root_w != root_o:
            self._parent[root_o] = root_w


class ProgramModel:
    """The resolved whole-program concurrency view."""

    def __init__(self, modules: Iterable[ModuleFacts]) -> None:
        self.modules: list[ModuleFacts] = sorted(
            modules, key=lambda m: m.path
        )
        #: Simple class name -> facts; ambiguous names are dropped.
        self.classes: dict[str, ClassFacts] = {}
        self._ambiguous: set[str] = set()
        #: Module-level functions by simple name (ambiguous dropped).
        self.functions: dict[str, MethodFacts] = {}
        #: Every analyzable method, keyed for call-graph traversal.
        self.methods: dict[MethodKey, MethodFacts] = {}
        self._aliases = _UnionFind()
        #: canonical node -> lock kind.
        self.kinds: dict[str, str] = {}
        #: method key -> {lock node -> acquisition witness}.
        self.may_acquire: dict[MethodKey, dict[str, Witness]] = {}
        #: method key -> {blocking desc -> witness}.
        self.may_block: dict[MethodKey, dict[str, Witness]] = {}
        #: (held node, acquired node) -> edge.
        self.edges: dict[tuple[str, str], LockOrderEdge] = {}
        self._build()

    # -- construction ---------------------------------------------------------------

    def _build(self) -> None:
        self._index()
        self._infer_attr_types()
        self._unify_locks()
        self._close_summaries()
        self._build_edges()

    def _index(self) -> None:
        for module in self.modules:
            for name, cls in module.classes.items():
                if name in self.classes:
                    self._ambiguous.add(name)
                else:
                    self.classes[name] = cls
                for qual, method in cls.methods.items():
                    self.methods[(name, qual)] = method
            for name, func in module.functions.items():
                if name in self.functions:
                    self._ambiguous.add(name)
                else:
                    self.functions[name] = func
                self.methods[("", name)] = func
        for name in self._ambiguous:
            self.classes.pop(name, None)
            self.functions.pop(name, None)

    def class_of(self, name: str) -> Optional[ClassFacts]:
        return self.classes.get(name)

    # -- attribute-type inference ---------------------------------------------------

    def _infer_attr_types(self) -> None:
        """Propagate constructor types through constructor call sites.

        ``QueryService(registry=self.registry)`` teaches
        ``QueryService.registry`` the type the caller's ``registry``
        attribute already has.  A few rounds reach the fixpoint; the
        bound only guards against pathological alias chains.
        """
        for _ in range(5):
            changed = False
            for key in sorted(self.methods):
                method = self.methods[key]
                caller_cls = self.class_of(method.class_name)
                for call in method.calls:
                    target = self._ctor_class(call.callee)
                    if target is None:
                        continue
                    for param, ctor in self._call_params(call, target):
                        attr = self._param_attr(target, param)
                        if attr is None or attr in target.attr_types:
                            continue
                        if ctor is not None:
                            target.attr_types[attr] = ctor
                            changed = True
                    for param, chain in self._call_chains(call, target):
                        attr = self._param_attr(target, param)
                        if attr is None or attr in target.attr_types:
                            continue
                        inferred = self._chain_type(caller_cls, chain)
                        if inferred is not None:
                            target.attr_types[attr] = inferred
                            changed = True
            if not changed:
                break

    def _ctor_class(self, callee: Chain) -> Optional[ClassFacts]:
        if len(callee) == 2 and callee[0] == "@name":
            return self.class_of(callee[1])
        return None

    @staticmethod
    def _param_attr(cls: ClassFacts, param: str) -> Optional[str]:
        for attr, alias in cls.param_attrs.items():
            if alias == param:
                return attr
        return None

    @staticmethod
    def _param_name(cls: ClassFacts, key: object) -> Optional[str]:
        if isinstance(key, str):
            return key
        if isinstance(key, int) and 0 <= key < len(cls.init_params):
            return cls.init_params[key]
        return None

    def _call_params(self, call, cls: ClassFacts):
        for key, ctor in call.arg_ctors:
            param = self._param_name(cls, key)
            if param is not None:
                yield param, ctor
        return

    def _call_chains(self, call, cls: ClassFacts):
        for key, chain in call.arg_chains:
            param = self._param_name(cls, key)
            if param is not None:
                yield param, chain
        return

    def _chain_type(
        self, cls: Optional[ClassFacts], chain: Chain
    ) -> Optional[str]:
        """The class name a ``self.…`` chain evaluates to, if known."""
        if cls is None or not chain or chain[0] != "self":
            return None
        if len(chain) == 1:
            # A bare ``self`` argument: the caller's own class — the
            # parent-pointer pattern cycles are made of.
            return cls.name
        current = cls
        for segment in chain[1:-1]:
            next_name = current.attr_types.get(segment)
            next_cls = self.class_of(next_name) if next_name else None
            if next_cls is None:
                return None
            current = next_cls
        return current.attr_types.get(chain[-1])

    # -- lock identity --------------------------------------------------------------

    def _unify_locks(self) -> None:
        for module in self.modules:
            for cls_name in sorted(module.classes):
                cls = module.classes[cls_name]
                if cls_name in self._ambiguous:
                    continue
                for attr, kind in sorted(cls.lock_attrs.items()):
                    node = f"{cls_name}.{attr}"
                    existing = self.kinds.get(node)
                    if existing is None or existing == "unknown":
                        self.kinds[node] = kind
        # Constructor-site lock passing: C(lock=self._lock) aliases
        # C.<attr-of-that-param> with the caller's lock node.
        for key in sorted(self.methods):
            method = self.methods[key]
            caller_cls = self.class_of(method.class_name)
            for call in method.calls:
                target = self._ctor_class(call.callee)
                if target is None:
                    continue
                for param, chain in self._call_chains(call, target):
                    attr = self._param_attr(target, param)
                    if attr is None or attr not in target.lock_attrs:
                        continue
                    source = self._resolve_chain(caller_cls, chain)
                    if source is None:
                        continue
                    self._aliases.union(source, f"{target.name}.{attr}")

    def _resolve_chain(
        self, cls: Optional[ClassFacts], chain: Chain
    ) -> Optional[str]:
        """Resolve a lock chain to a raw (pre-union) node key."""
        if not chain:
            return None
        if chain[0] == "@type":
            start = self.class_of(chain[1])
            if start is None:
                return f"{chain[1]}.{'.'.join(chain[2:])}"
            return self._resolve_from(start, chain[2:])
        if chain[0] == "self":
            if cls is None:
                return None
            return self._resolve_from(cls, chain[1:])
        # Bare-name or unresolvable root: keep it opaque but stable.
        return ".".join(chain)

    def _resolve_from(
        self, cls: ClassFacts, rest: Chain
    ) -> Optional[str]:
        if not rest:
            return None
        current = cls
        for index, segment in enumerate(rest[:-1]):
            next_name = current.attr_types.get(segment)
            next_cls = self.class_of(next_name) if next_name else None
            if next_cls is None:
                # Unresolvable middle segment: class-local opaque node.
                return f"{current.name}.{'.'.join(rest[index:])}"
            current = next_cls
        last = rest[-1]
        if last in current.lock_props:
            last = current.lock_props[last]
        return f"{current.name}.{last}"

    def lock_node(
        self, cls: Optional[ClassFacts], chain: Chain
    ) -> Optional[str]:
        """The canonical (post-union) lock node of a chain, if any."""
        raw = self._resolve_chain(cls, chain)
        if raw is None:
            return None
        return self._aliases.find(raw)

    def node_kind(self, node: str) -> str:
        kind = self.kinds.get(node)
        if kind is not None:
            return kind
        lowered = node.lower()
        if "semaphore" in lowered:
            return "semaphore"
        if "cond" in lowered:
            return "condition"
        return "unknown"

    # -- call resolution ------------------------------------------------------------

    def resolve_call(
        self, caller: MethodFacts, callee: Chain
    ) -> Optional[MethodKey]:
        cls = self.class_of(caller.class_name)
        if callee[0] == "self" and len(callee) == 2:
            name = callee[1]
            if cls is None:
                return None
            if "." not in name:
                # Plain self.m() — maybe a real method, maybe deeper.
                if name in cls.methods:
                    return (cls.name, name)
                return None
            # self.attr.m() flattened as "attr.m" (or deeper).
            parts = name.split(".")
            if name in cls.methods:  # nested-def qualname
                return (cls.name, name)
            target_type = self._chain_owner(cls, parts)
            if target_type is not None and parts[-1] in target_type.methods:
                return (target_type.name, parts[-1])
            return None
        if callee[0] == "@local" and len(callee) == 3:
            target = self.class_of(callee[1])
            if target is not None and callee[2] in target.methods:
                return (target.name, callee[2])
            return None
        if callee[0] == "@name" and len(callee) == 2:
            name = callee[1]
            # Sibling/enclosing nested defs first (closures call each
            # other): from the caller's own scope outward.
            if cls is not None:
                parts = caller.qualname.split(".")
                for cut in range(len(parts), 0, -1):
                    qual = ".".join((*parts[:cut], name))
                    if qual in cls.methods:
                        return (cls.name, qual)
            target = self.class_of(name)
            if target is not None:
                if "__init__" in target.methods:
                    return (target.name, "__init__")
                return None
            if name in self.functions:
                return ("", name)
            return None
        return None

    def _chain_owner(
        self, cls: ClassFacts, parts: list[str]
    ) -> Optional[ClassFacts]:
        """The class owning ``parts[-1]`` when walking attr types."""
        current = cls
        for segment in parts[:-1]:
            next_name = current.attr_types.get(segment)
            next_cls = self.class_of(next_name) if next_name else None
            if next_cls is None:
                return None
            current = next_cls
        return current

    def display(self, key: MethodKey) -> str:
        cls_name, qual = key
        if cls_name:
            return f"{cls_name}.{qual}"
        return qual

    # -- summaries ------------------------------------------------------------------

    def _close_summaries(self) -> None:
        # Seed with each method's direct facts.
        for key in sorted(self.methods):
            method = self.methods[key]
            cls = self.class_of(method.class_name)
            acquired: dict[str, Witness] = {}
            for acq in method.acquisitions:
                node = self.lock_node(cls, acq.chain)
                if node is None or node in acquired:
                    continue
                acquired[node] = Witness(
                    method.path, acq.line,
                    f"{self.display(key)} acquires {node}",
                )
            self.may_acquire[key] = acquired
            blocked: dict[str, Witness] = {}
            for blocker in method.blocking:
                if blocker.desc in blocked:
                    continue
                blocked[blocker.desc] = Witness(
                    method.path, blocker.line,
                    f"{self.display(key)} blocks on {blocker.desc}",
                )
            self.may_block[key] = blocked
        # Close both summaries under the call graph.
        for _ in range(len(self.methods) + 1):
            changed = False
            for key in sorted(self.methods):
                method = self.methods[key]
                for call in method.calls:
                    target = self.resolve_call(method, call.callee)
                    if target is None or target == key:
                        continue
                    for node, witness in self.may_acquire.get(
                        target, {}
                    ).items():
                        if node not in self.may_acquire[key]:
                            self.may_acquire[key][node] = witness
                            changed = True
                    for desc, witness in self.may_block.get(
                        target, {}
                    ).items():
                        if desc not in self.may_block[key]:
                            self.may_block[key][desc] = witness
                            changed = True
            if not changed:
                break

    # -- the lock-order graph -------------------------------------------------------

    def _add_edge(
        self, held: str, acquired: str, witness: Witness
    ) -> None:
        edge = self.edges.get((held, acquired))
        if edge is None:
            edge = LockOrderEdge(held, acquired)
            self.edges[(held, acquired)] = edge
        if len(edge.witnesses) < 3:
            edge.witnesses.append(witness)

    def _build_edges(self) -> None:
        for key in sorted(self.methods):
            method = self.methods[key]
            cls = self.class_of(method.class_name)
            # Direct nesting: with A: with B: ...
            for acq in method.acquisitions:
                node = self.lock_node(cls, acq.chain)
                if node is None:
                    continue
                for held_chain in acq.held:
                    held = self.lock_node(cls, held_chain)
                    if held is None or held == node:
                        continue
                    self._add_edge(
                        held, node,
                        Witness(
                            method.path, acq.line,
                            f"{self.display(key)} acquires {node} while "
                            f"holding {held}",
                        ),
                    )
            # Transitive: call something that may acquire, lock held.
            for call in method.calls:
                if not call.held:
                    continue
                target = self.resolve_call(method, call.callee)
                if target is None or target == key:
                    continue
                held_nodes = []
                for held_chain in call.held:
                    held = self.lock_node(cls, held_chain)
                    if held is not None:
                        held_nodes.append(held)
                if not held_nodes:
                    continue
                for node, origin in sorted(
                    self.may_acquire.get(target, {}).items()
                ):
                    for held in held_nodes:
                        if held == node:
                            # Same lock again through a call: a
                            # self-deadlock only for plain Locks.
                            if self.node_kind(node) != "lock":
                                continue
                        self._add_edge(
                            held, node,
                            Witness(
                                method.path, call.line,
                                f"{self.display(key)} holds {held} and "
                                f"calls {self.display(target)} "
                                f"({origin.file}:{origin.line} acquires "
                                f"{node})",
                            ),
                        )

    # -- cycle detection ------------------------------------------------------------

    def lock_cycles(self) -> list[tuple[list[str], list[Witness]]]:
        """Every elementary lock-order cycle, canonicalized and sorted.

        Returns ``(cycle_nodes, witnesses)`` pairs where
        ``cycle_nodes`` is ``[a, b, ..., a]`` starting at the cycle's
        lexicographically smallest node, and the witnesses cover each
        edge in order (first witness per edge).
        """
        graph: dict[str, list[str]] = {}
        for held, acquired in sorted(self.edges):
            graph.setdefault(held, []).append(acquired)
        seen: set[tuple[str, ...]] = set()
        cycles: list[tuple[list[str], list[Witness]]] = []
        for start in sorted(graph):
            stack = [(start, [start])]
            while stack:
                node, path = stack.pop()
                for nxt in graph.get(node, ()):
                    if nxt == start and (len(path) > 1 or (
                        (start, start) in self.edges
                    )):
                        cycle = path + [start]
                        key = self._canonical_cycle(cycle)
                        if key in seen:
                            continue
                        seen.add(key)
                        witnesses = [
                            self.edges[(cycle[i], cycle[i + 1])].witnesses[0]
                            for i in range(len(cycle) - 1)
                        ]
                        cycles.append((cycle, witnesses))
                    elif nxt not in path and len(path) < 6:
                        stack.append((nxt, path + [nxt]))
        cycles.sort(key=lambda pair: tuple(pair[0]))
        return cycles

    @staticmethod
    def _canonical_cycle(cycle: list[str]) -> tuple[str, ...]:
        body = cycle[:-1]
        smallest = min(range(len(body)), key=lambda i: body[i])
        rotated = body[smallest:] + body[:smallest]
        return tuple(rotated)

"""The whole-program concurrency rule family (CON001–CON005).

A two-phase pass over the entire source tree:

1. **fact extraction** (:mod:`~repro.analysis.concurrency.facts`) —
   each module is independently reduced to lock attributes, per-method
   acquisition/access/call/blocking summaries, thread spawns, journal
   emit sites, and wire-record literals;
2. **whole-program solve** (:mod:`~repro.analysis.concurrency.model`)
   — the facts are joined into one :class:`ProgramModel`: lock aliases
   unified, the call graph resolved, may-acquire/may-block summaries
   closed, and the lock-order graph built.

The rules (:mod:`~repro.analysis.concurrency.rules`,
:mod:`~repro.analysis.concurrency.contracts`) then read the model:
deadlock cycles (CON001), thread-escaping unguarded state (CON002),
blocking under a held mutex (CON003), and conformance of journal
events / wire records to their live schemas (CON004/CON005).

Entry point: :func:`analyze` — or ``repro lint --concurrency`` /
``repro lint --select CON`` from the command line.
"""

from __future__ import annotations

from typing import Iterable

# Importing the rule modules registers their checkers.
from repro.analysis.concurrency import contracts as _contracts  # noqa: F401
from repro.analysis.concurrency import rules as _rules  # noqa: F401
from repro.analysis.concurrency.facts import ModuleFacts, extract_module
from repro.analysis.concurrency.model import ProgramModel
from repro.analysis.astutils import CodeModule

__all__ = [
    "ModuleFacts",
    "ProgramModel",
    "build_model",
    "extract_module",
]


def build_model(modules: Iterable[CodeModule]) -> ProgramModel:
    """Run both phases over already-parsed modules."""
    return ProgramModel(extract_module(module) for module in modules)

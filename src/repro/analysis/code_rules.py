"""The AST rule family: concurrency and contract discipline.

These are the checks the generic linters cannot express because they
encode *this repo's* invariants:

* ``COD001 lock-discipline`` — an attribute that is ever touched under
  ``with self.<lock>:`` belongs to that lock; touching it outside any
  lock block (``__init__`` excepted) is a data race waiting for load.
* ``COD002 lazy-orderer-contract`` — ``PlanOrderer.order`` /
  ``order_spaces`` implementations must stream: no ``list()`` /
  ``sorted()`` over the incoming plan iterable before the first plan
  is yielded, and a non-generator implementation must delegate to one.
  This is the static face of ``tests/ordering/test_lazy_contract.py``.
* ``COD003 production-assert`` — ``assert`` vanishes under
  ``python -O``; invariants must raise
  :class:`~repro.errors.InternalError` instead.
* ``COD004 broad-except`` — ``except Exception`` that neither
  re-raises nor uses the caught exception swallows failures silently.
* ``COD005 mutable-default-arg`` — the classic shared-default trap.
* ``COD006 bare-sleep`` — ``time.sleep`` in service/resilience code is
  an uninterruptible pause; shutdown and cancellation must be able to
  wake every wait, so pauses go through an event-like ``.wait()``
  (``CancellationToken.wait``, ``threading.Event.wait``).
* ``COD007 library-print`` — ``print()`` in library code bypasses the
  observability layer (journal, metrics, tracing) and cannot be
  silenced by embedders; only the CLI and the experiment reporters
  (allow-listed by path) may write to stdout directly.

Every checker takes a :class:`~repro.analysis.astutils.CodeModule` and
yields :class:`~repro.analysis.diagnostics.Diagnostic` records.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.astutils import (
    CodeModule,
    attribute_chain,
    base_names,
    class_defs,
    first_yield_line,
    has_yield,
    is_lock_name,
    lock_context_attr,
    names_in,
    self_attribute,
)
from repro.analysis.diagnostics import Diagnostic, Location, Severity
from repro.analysis.registry import FAMILY_CODE, rule


def _diagnostic(
    module: CodeModule,
    rule_id: str,
    severity: Severity,
    node: ast.AST,
    message: str,
    fix_hint: str = "",
    **data: object,
) -> Diagnostic:
    return Diagnostic(
        rule=rule_id,
        severity=severity,
        message=message,
        location=Location(
            module.path,
            getattr(node, "lineno", 0),
            getattr(node, "col_offset", -1) + 1,
        ),
        fix_hint=fix_hint,
        family=FAMILY_CODE,
        data=data,
    )


# -- COD001: lock discipline -------------------------------------------------------


class _LockUsage(ast.NodeVisitor):
    """Collects guarded/unguarded ``self.<attr>`` accesses of one class.

    An access is *write-ish* when it can change the attribute's state:
    assignment / augmented assignment / deletion, a subscript store
    through it (``self._d[k] = v``), or a method call on it
    (``self._d.get(k)`` — conservatively, any receiver position).
    Plain reads (bare loads, subscript loads, argument positions) are
    harmless to share as long as nobody mutates concurrently; the
    discipline therefore is:

    * an outside WRITE races with any guarded access at all;
    * an outside READ races only with guarded WRITES.

    Reads of immutable references (``self.registry`` passed along under
    an unrelated lock) thus stay clean, while the actual shared
    containers and counters are held to the lock.
    """

    def __init__(self) -> None:
        #: Attrs with any access under a lock / with write-ish access.
        self.guarded: set[str] = set()
        self.guarded_writes: set[str] = set()
        #: (attr, node, method, is_write) outside any lock block.
        self.unguarded: list[tuple[str, ast.Attribute, str, bool]] = []
        self._lock_depth = 0
        self._method = ""
        self._exempt_method = False
        #: ids of attribute nodes that are the callee of a direct
        #: ``self.method(...)`` call — method lookups, not state.
        self._call_funcs: set[int] = set()
        #: ids of attribute nodes used in a mutating position.
        self._writeish: set[int] = set()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # Nested classes get their own analysis pass; don't mix attrs.
        return

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        outer_method, outer_exempt = self._method, self._exempt_method
        if not self._method:
            self._method = node.name
            # __init__ runs before the object is shared across threads;
            # requiring the lock there would be noise, not safety.
            self._exempt_method = node.name == "__init__"
        self.generic_visit(node)
        self._method, self._exempt_method = outer_method, outer_exempt

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_With(self, node: ast.With) -> None:
        holds_lock = any(lock_context_attr(item) is not None for item in node.items)
        for item in node.items:
            self.visit(item)
        if holds_lock:
            self._lock_depth += 1
        for statement in node.body:
            self.visit(statement)
        if holds_lock:
            self._lock_depth -= 1

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if self_attribute(func) is not None:
            self._call_funcs.add(id(func))
        elif isinstance(func, ast.Attribute) and self_attribute(func.value):
            # self.<attr>.method(...): the receiver may be mutated.
            self._writeish.add(id(func.value))
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)) and self_attribute(
            node.value
        ):
            self._writeish.add(id(node.value))
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = self_attribute(node)
        if (
            attr is not None
            and not is_lock_name(attr)
            and id(node) not in self._call_funcs
        ):
            is_write = (
                isinstance(node.ctx, (ast.Store, ast.Del))
                or id(node) in self._writeish
            )
            if self._lock_depth > 0:
                self.guarded.add(attr)
                if is_write:
                    self.guarded_writes.add(attr)
            elif not self._exempt_method:
                self.unguarded.append((attr, node, self._method, is_write))
        self.generic_visit(node)


@rule(
    "COD001",
    "lock-discipline",
    FAMILY_CODE,
    Severity.ERROR,
    "attribute guarded by a lock is also accessed outside it",
    "An attribute read or written under `with self._lock:` is shared "
    "state; any access outside the lock races with the guarded ones.",
)
def check_lock_discipline(module: CodeModule) -> Iterator[Diagnostic]:
    for cls in class_defs(module.tree):
        usage = _LockUsage()
        for statement in cls.body:
            usage.visit(statement)
        if not usage.guarded:
            continue
        for attr, node, method, is_write in usage.unguarded:
            if is_write:
                racy = attr in usage.guarded
            else:
                racy = attr in usage.guarded_writes
            if not racy:
                continue
            kind = "written" if is_write else "read"
            yield _diagnostic(
                module,
                "COD001",
                Severity.ERROR,
                node,
                f"attribute 'self.{attr}' of class {cls.name!r} is "
                f"mutated under a lock elsewhere but {kind} lock-free in "
                f"{method or cls.name}()",
                fix_hint=f"wrap the access in the same `with self.<lock>:` "
                f"block that guards 'self.{attr}'",
                attribute=attr,
                class_name=cls.name,
                method=method,
            )


# -- COD002: lazy orderer contract -------------------------------------------------

_ORDER_METHODS = ("order", "order_spaces")
_MATERIALIZERS = ("list", "sorted", "tuple")
_PLAN_PARAMS = ("space", "spaces", "plans", "plan_space", "plan_spaces")


def _materializes_plan_iterable(
    call: ast.Call, plan_params: set[str]
) -> Optional[str]:
    """Why this call eagerly materializes the plan iterable, or None."""
    if not isinstance(call.func, ast.Name) or call.func.id not in _MATERIALIZERS:
        return None
    if not call.args:
        return None
    argument = call.args[0]
    for node in ast.walk(argument):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "plans"
        ):
            return f"{call.func.id}() over a .plans() enumeration"
    if names_in(argument) & plan_params:
        which = ", ".join(sorted(names_in(argument) & plan_params))
        return f"{call.func.id}() over plan-space parameter {which!r}"
    return None


def _delegates(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Does a non-generator implementation forward to another orderer?"""
    for statement in func.body:
        if not isinstance(statement, ast.Return) or statement.value is None:
            continue
        for node in ast.walk(statement.value):
            if isinstance(node, ast.Call):
                chain = attribute_chain(node.func)
                name = chain[-1] if chain else (
                    node.func.id if isinstance(node.func, ast.Name) else ""
                )
                if name.startswith("order"):
                    return True
    return False


@rule(
    "COD002",
    "lazy-orderer-contract",
    FAMILY_CODE,
    Severity.ERROR,
    "orderer materializes the plan iterable before the first yield",
    "Consumers pay for exactly the prefix they read; list()/sorted() "
    "over the plan space before the first yield silently re-introduces "
    "the O(plan-space) cost the paper's algorithms exist to avoid.",
)
def check_lazy_orderer_contract(module: CodeModule) -> Iterator[Diagnostic]:
    for cls in class_defs(module.tree):
        bases = base_names(cls)
        if not any(base.endswith("Orderer") for base in bases):
            continue
        for statement in cls.body:
            if not isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if statement.name not in _ORDER_METHODS:
                continue
            plan_params = {
                arg.arg
                for arg in (
                    *statement.args.posonlyargs,
                    *statement.args.args,
                    *statement.args.kwonlyargs,
                )
                if arg.arg in _PLAN_PARAMS
            }
            if not has_yield(statement):
                if not _delegates(statement):
                    yield _diagnostic(
                        module,
                        "COD002",
                        Severity.ERROR,
                        statement,
                        f"{cls.name}.{statement.name}() is neither a "
                        f"generator nor a delegation to another order*() "
                        f"call; it computes the ordering eagerly",
                        fix_hint="turn the method into a generator "
                        "(yield plans one by one) or return another "
                        "orderer method's iterator",
                        class_name=cls.name,
                        method=statement.name,
                    )
                continue
            yield_line = first_yield_line(statement)
            for node in ast.walk(statement):
                if not isinstance(node, ast.Call):
                    continue
                reason = _materializes_plan_iterable(node, plan_params)
                if reason is None:
                    continue
                if yield_line is not None and node.lineno > yield_line:
                    continue
                yield _diagnostic(
                    module,
                    "COD002",
                    Severity.ERROR,
                    node,
                    f"{cls.name}.{statement.name}() calls {reason} before "
                    f"yielding its first plan",
                    fix_hint="iterate the plan space lazily; only "
                    "materialize what has already been emitted",
                    class_name=cls.name,
                    method=statement.name,
                )


# -- COD003: production asserts ----------------------------------------------------


@rule(
    "COD003",
    "production-assert",
    FAMILY_CODE,
    Severity.ERROR,
    "assert statement in production code",
    "`python -O` strips asserts, so an invariant guarded by one simply "
    "stops being checked; raise repro.errors.InternalError instead.",
)
def check_production_assert(module: CodeModule) -> Iterator[Diagnostic]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Assert):
            condition = ast.unparse(node.test)
            if len(condition) > 60:
                condition = condition[:57] + "..."
            yield _diagnostic(
                module,
                "COD003",
                Severity.ERROR,
                node,
                f"assert {condition!r} disappears under python -O",
                fix_hint="raise InternalError (repro.errors) with the "
                "same condition instead",
            )


# -- COD004: broad except ----------------------------------------------------------


@rule(
    "COD004",
    "broad-except",
    FAMILY_CODE,
    Severity.WARNING,
    "broad exception handler that neither re-raises nor uses the error",
    "Catching Exception/BaseException and dropping the error on the "
    "floor hides real failures; handlers must re-raise, log, or carry "
    "the exception onward.",
)
def check_broad_except(module: CodeModule) -> Iterator[Diagnostic]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            caught = "bare except"
        else:
            chain = attribute_chain(node.type)
            name = chain[-1] if chain else ""
            if name not in ("Exception", "BaseException"):
                continue
            caught = f"except {name}"
        body = ast.Module(body=list(node.body), type_ignores=[])
        reraises = any(
            isinstance(child, ast.Raise) for child in ast.walk(body)
        )
        uses_error = node.name is not None and node.name in names_in(body)
        if reraises or uses_error:
            continue
        yield _diagnostic(
            module,
            "COD004",
            Severity.WARNING,
            node,
            f"{caught} swallows the error: the handler neither re-raises "
            f"nor references the caught exception",
            fix_hint="re-raise, narrow the exception type, or record the "
            "exception (log/metric/result object)",
        )


# -- COD005: mutable default arguments ---------------------------------------------

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = ("list", "dict", "set", "defaultdict", "deque", "Counter")


def _mutable_default(default: ast.expr) -> Optional[str]:
    if isinstance(default, _MUTABLE_LITERALS):
        return ast.unparse(default)
    if (
        isinstance(default, ast.Call)
        and isinstance(default.func, ast.Name)
        and default.func.id in _MUTABLE_CALLS
    ):
        return ast.unparse(default)
    return None


@rule(
    "COD005",
    "mutable-default-arg",
    FAMILY_CODE,
    Severity.WARNING,
    "mutable default argument shared across calls",
    "Default values are evaluated once at def time; a list/dict/set "
    "default silently becomes cross-call shared state.",
)
def check_mutable_default(module: CodeModule) -> Iterator[Diagnostic]:
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = [
            *node.args.defaults,
            *(d for d in node.args.kw_defaults if d is not None),
        ]
        for default in defaults:
            rendered = _mutable_default(default)
            if rendered is None:
                continue
            yield _diagnostic(
                module,
                "COD005",
                Severity.WARNING,
                default,
                f"function {node.name!r} has mutable default {rendered}",
                fix_hint="default to None and create the container inside "
                "the function body",
                function=node.name,
            )


# -- COD006: bare time.sleep -------------------------------------------------------


def _time_sleep_imports(tree: ast.Module) -> set[str]:
    """Local names that resolve to ``time.sleep`` in this module."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name == "sleep":
                    names.add(alias.asname or alias.name)
    return names


def _enclosing_function(
    tree: ast.Module, target: ast.AST
) -> Optional[str]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for child in ast.walk(node):
                if child is target:
                    return node.name
    return None


@rule(
    "COD006",
    "bare-sleep",
    FAMILY_CODE,
    Severity.ERROR,
    "uninterruptible time.sleep in concurrent code",
    "A thread parked in time.sleep cannot be woken: cancellation and "
    "shutdown stall until the full delay elapses.  Waits must go "
    "through an event-like primitive (CancellationToken.wait, "
    "threading.Event.wait) that a signal can interrupt.",
)
def check_bare_sleep(module: CodeModule) -> Iterator[Diagnostic]:
    imported = _time_sleep_imports(module.tree)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            bare = attribute_chain(func) == ("time", "sleep")
        else:
            bare = isinstance(func, ast.Name) and func.id in imported
        if not bare:
            continue
        where = _enclosing_function(module.tree, node)
        context = f" in {where}()" if where else ""
        yield _diagnostic(
            module,
            "COD006",
            Severity.ERROR,
            node,
            f"bare time.sleep{context} cannot be interrupted by "
            f"cancellation or shutdown",
            fix_hint="wait on a cancellable primitive instead: "
            "CancellationToken.wait(timeout) or threading.Event.wait "
            "(returning early when set)",
            function=where or "",
        )


# -- COD007: print in library code -------------------------------------------------

#: Path suffixes (``/``-normalized) where printing to stdout IS the
#: job: the CLI, module entry points, and the experiment reporters.
_PRINT_ALLOWED_SUFFIXES = (
    "cli.py",
    "__main__.py",
    "experiments/figure6.py",
    "experiments/report.py",
)


def _print_allowed(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return normalized.endswith(_PRINT_ALLOWED_SUFFIXES)


@rule(
    "COD007",
    "library-print",
    FAMILY_CODE,
    Severity.ERROR,
    "print() in library code instead of the observability layer",
    "Library code writes stdout that embedders (services, tests, "
    "pipelines) cannot intercept or silence; observations belong in "
    "the journal, the metric registry, or a returned report object.  "
    "Only the CLI and the experiment reporters print.",
)
def check_library_print(module: CodeModule) -> Iterator[Diagnostic]:
    if _print_allowed(module.path):
        return
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            where = _enclosing_function(module.tree, node)
            context = f" in {where}()" if where else ""
            yield _diagnostic(
                module,
                "COD007",
                Severity.ERROR,
                node,
                f"print(){context} writes to stdout from library code",
                fix_hint="emit a journal event, record a metric, or "
                "return the text to the caller; printing is reserved "
                "for cli.py and the experiment reporters",
                function=where or "",
            )

"""The rule registry: every lint rule, both families, in one catalog.

A rule is a pure metadata record (:class:`Rule`) plus a checker
callable.  Code checkers receive a
:class:`~repro.analysis.astutils.CodeModule`; scenario checkers receive
a :class:`~repro.analysis.scenario.ScenarioContext`.  Both return an
iterable of :class:`~repro.analysis.diagnostics.Diagnostic`.

Rule selection follows the familiar ``--select``/``--ignore``
convention: a pattern matches a rule when it equals the rule's id or
slug, or is a prefix of the id (so ``COD`` selects every code rule).
``--ignore`` wins over ``--select``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Sequence

from repro.errors import AnalysisError
from repro.analysis.diagnostics import Diagnostic, Severity

#: Checker signature: context object in, diagnostics out.
Checker = Callable[[object], Iterable[Diagnostic]]

FAMILY_CODE = "code"
FAMILY_SCENARIO = "scenario"
FAMILY_CONCURRENCY = "concurrency"


@dataclass(frozen=True)
class Rule:
    """Metadata of one lint rule."""

    id: str
    slug: str
    family: str
    severity: Severity
    summary: str
    rationale: str = ""

    def matches(self, pattern: str) -> bool:
        pattern = pattern.strip()
        if not pattern:
            return False
        return (
            pattern == self.slug
            or self.id.upper().startswith(pattern.upper())
        )


class RuleRegistry:
    """Get-by-id collection of rules and their checkers."""

    def __init__(self) -> None:
        self._rules: dict[str, Rule] = {}
        self._checkers: dict[str, Checker] = {}

    def register(self, rule: Rule, checker: Checker) -> None:
        if rule.id in self._rules:
            raise AnalysisError(f"duplicate rule id {rule.id!r}")
        if any(r.slug == rule.slug for r in self._rules.values()):
            raise AnalysisError(f"duplicate rule slug {rule.slug!r}")
        if rule.family not in (
            FAMILY_CODE, FAMILY_SCENARIO, FAMILY_CONCURRENCY
        ):
            raise AnalysisError(f"unknown rule family {rule.family!r}")
        self._rules[rule.id] = rule
        self._checkers[rule.id] = checker

    # -- lookup -----------------------------------------------------------------

    def rules(self, family: Optional[str] = None) -> tuple[Rule, ...]:
        return tuple(
            rule
            for rule in sorted(self._rules.values(), key=lambda r: r.id)
            if family is None or rule.family == family
        )

    def get(self, rule_id: str) -> Rule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise AnalysisError(f"unknown rule {rule_id!r}") from None

    def checker(self, rule_id: str) -> Checker:
        self.get(rule_id)
        return self._checkers[rule_id]

    def find(self, pattern: str) -> tuple[Rule, ...]:
        """Every rule the select/ignore *pattern* matches."""
        return tuple(r for r in self.rules() if r.matches(pattern))

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules())

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, rule_id: object) -> bool:
        return rule_id in self._rules

    # -- selection --------------------------------------------------------------

    def resolve_selection(
        self,
        family: str,
        select: Sequence[str] = (),
        ignore: Sequence[str] = (),
    ) -> tuple[Rule, ...]:
        """The rules of *family* to run under ``--select``/``--ignore``.

        Unknown patterns are an error — a typo in ``--select`` silently
        running nothing is the worst failure mode a linter can have.
        """
        for pattern in (*select, *ignore):
            if not self.find(pattern):
                known = ", ".join(
                    f"{r.id} ({r.slug})" for r in self.rules()
                )
                raise AnalysisError(
                    f"pattern {pattern!r} matches no rule; known rules: {known}"
                )
        chosen = []
        for rule in self.rules(family):
            if select and not any(rule.matches(p) for p in select):
                continue
            if any(rule.matches(p) for p in ignore):
                continue
            chosen.append(rule)
        return tuple(chosen)


#: The process-wide default registry all shipped rules register into.
DEFAULT_REGISTRY = RuleRegistry()


def rule(
    rule_id: str,
    slug: str,
    family: str,
    severity: Severity,
    summary: str,
    rationale: str = "",
    registry: Optional[RuleRegistry] = None,
) -> Callable[[Checker], Checker]:
    """Decorator registering a checker under the given metadata."""

    target = registry if registry is not None else DEFAULT_REGISTRY

    def decorate(checker: Checker) -> Checker:
        target.register(
            Rule(rule_id, slug, family, severity, summary, rationale), checker
        )
        return checker

    return decorate

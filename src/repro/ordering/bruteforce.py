"""Brute-force orderers: the naive baseline and the paper's PI.

Both materialize the full Cartesian product of the buckets and pick
the maximum each iteration — they are exact by construction.  The
difference is what gets recomputed after a plan executes:

* :class:`ExhaustiveOrderer` recomputes the utility of every remaining
  plan each iteration.
* :class:`PIOrderer` ("Plan Independence", paper Section 6) keeps
  cached utilities and invalidates only those of plans *not
  independent* of the just-executed plan — "the best brute-force
  algorithm that also computes the exact plan ordering".

Ties are broken by the plans' source-name keys, so both algorithms
are fully deterministic.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import InternalError
from repro.ordering.base import EmitCallback, OrderedPlan, PlanOrderer
from repro.reformulation.plans import PlanSpace, QueryPlan


class ExhaustiveOrderer(PlanOrderer):
    """Recompute-everything brute force (ablation baseline)."""

    name = "exhaustive"

    def order(
        self,
        space: PlanSpace,
        k: int,
        on_emit: Optional[EmitCallback] = None,
    ) -> Iterator[OrderedPlan]:
        return self.order_spaces([space], k, on_emit)

    def order_spaces(
        self,
        spaces: "list[PlanSpace] | tuple[PlanSpace, ...]",
        k: int,
        on_emit: Optional[EmitCallback] = None,
    ) -> Iterator[OrderedPlan]:
        self._check_k(k)
        context = self.utility.new_context()
        remaining: dict[tuple[str, ...], QueryPlan] = {
            plan.key: plan for space in spaces for plan in space.plans()
        }
        for rank in range(1, k + 1):
            if not remaining:
                return
            best_plan = None
            best_key = None
            best_utility = float("-inf")
            for key, plan in remaining.items():
                value = self._evaluate_plan(plan, context)
                if value > best_utility or (
                    value == best_utility and (best_key is None or key < best_key)
                ):
                    best_utility = value
                    best_plan = plan
                    best_key = key
            if best_plan is None:
                raise InternalError(
                    "non-empty remaining set produced no best plan"
                )
            self.stats.snapshot_first_plan()
            yield OrderedPlan(best_plan, best_utility, rank)
            del remaining[best_plan.key]
            if on_emit is None or on_emit(best_plan):
                context.record(best_plan)


class PIOrderer(PlanOrderer):
    """Brute force with plan-independence-aware caching (paper's PI).

    In each iteration PI "uses plan independence information to decide
    the utility of which plans may have changed and thus need to be
    recomputed".  For context-free measures this means every utility
    is computed exactly once; for coverage-like measures only the
    plans overlapping the winner are recomputed.
    """

    name = "PI"

    def order(
        self,
        space: PlanSpace,
        k: int,
        on_emit: Optional[EmitCallback] = None,
    ) -> Iterator[OrderedPlan]:
        return self.order_spaces([space], k, on_emit)

    def order_spaces(
        self,
        spaces: "list[PlanSpace] | tuple[PlanSpace, ...]",
        k: int,
        on_emit: Optional[EmitCallback] = None,
    ) -> Iterator[OrderedPlan]:
        self._check_k(k)
        context = self.utility.new_context()
        remaining: dict[tuple[str, ...], QueryPlan] = {
            plan.key: plan for space in spaces for plan in space.plans()
        }
        cached: dict[tuple[str, ...], float] = {}
        for rank in range(1, k + 1):
            if not remaining:
                return
            best_plan = None
            best_key = None
            best_utility = float("-inf")
            for key, plan in remaining.items():
                value = cached.get(key)
                if value is None:
                    value = self._evaluate_plan(plan, context)
                    cached[key] = value
                if value > best_utility or (
                    value == best_utility and (best_key is None or key < best_key)
                ):
                    best_utility = value
                    best_plan = plan
                    best_key = key
            if best_plan is None:
                raise InternalError(
                    "non-empty remaining set produced no best plan"
                )
            self.stats.snapshot_first_plan()
            yield OrderedPlan(best_plan, best_utility, rank)
            del remaining[best_plan.key]
            del cached[best_plan.key]
            if on_emit is None or on_emit(best_plan):
                context.record(best_plan)
                if not self.utility.context_free:
                    for key, plan in remaining.items():
                        if key in cached and not self.utility.independent(
                            best_plan, plan
                        ):
                            del cached[key]

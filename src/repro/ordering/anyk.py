"""Any-k ranked plan enumeration over the bucket lattice.

The Greedy/iDrips/Streamer orderers all pay for the *whole* plan space
before (or while) emitting the first plan: Greedy evaluates one plan
per subspace split, but PI/iDrips/Streamer materialize or abstract the
full Cartesian product.  The any-k line of work (Lawler 1972;
Tziavelis et al., "Any-k Algorithms for Enumerating Ranked Answers to
Conjunctive Queries") shows that the next-best element of a product
space can be produced with near-constant delay without ever touching
more than a thin frontier of the product.  :class:`AnyKOrderer` brings
that to the plan-ordering problem (paper, Definition 2.1).

**Index-vector view.**  Fix, per bucket, a total order on its sources;
a concrete plan is then an index vector ``v`` (one index per bucket)
and the plan space is the product lattice of the vectors.  Two
enumeration modes share this view:

**Lattice mode** — when the measure is *fully monotonic*
(:attr:`~repro.utility.base.UtilityMeasure.is_fully_monotonic`), sort
each bucket descending by the measure's
:meth:`~repro.utility.base.UtilityMeasure.source_preference_key`.
Full monotonicity makes utility antitone in every coordinate, in every
execution context: the plan at vector ``v`` is at least as good as any
``w >= v`` (componentwise).  A priority queue seeded with ``(0, ..,
0)`` therefore enumerates exactly: pop the best frontier plan, emit
it, and push its *Lawler successors* — the vectors deviating by ``+1``
in exactly one coordinate.  The emitted set stays downward closed and
the heap holds the minimal vectors of its complement, so every
unemitted plan is dominated by some heap entry.  Time to the first
plan is one utility evaluation (after an ``O(n * m log m)`` bucket
sort); each further plan costs at most ``n`` evaluations; memory is
``O(popped * n)`` vectors for query length ``n``, never ``O(m^n)``.

**Interval mode** — for every other measure (coverage, failure-aware
or caching costs, monetary), per-bucket preference orders do not
exist, so exact frontier pruning is impossible coordinate-wise.
Instead the heap mixes *concrete* entries (exact utility) with
*region* entries: the region at ``v`` stands for every plan ``w >= v``
and is keyed by the upper bound of the measure's sound
:meth:`~repro.utility.base.UtilityMeasure.evaluate_slots` interval
over the per-bucket suffix slots ``bucket_i[v_i:]`` — the same
dominance-interval machinery Drips uses (paper, Section 5.1), applied
to lattice cones instead of abstraction trees.  Popping a concrete
entry emits it (every other unemitted plan sits under some entry whose
upper bound is no larger); popping a region *refines* it into its
corner plan plus its one-coordinate successor regions.  Successor
regions overlap, which is harmless for upper bounds; visited-vector
sets deduplicate both corners and regions so each is created once and
memory again stays ``O(popped * n)`` heap entries.

**Tie-breaking** (documented, deterministic): heap order is
``(-value, kind, plan key)`` with concrete entries (kind 0) before
region entries (kind 1) at equal value, and lexicographically smaller
plan keys first.  Any tie choice satisfies Definition 2.1, so
AnyK's *utility* stream matches the brute-force reference exactly
while the plan sequence may differ within a tie group — the
equivalence granularity ``tests/ordering/equivalence.py`` checks.

**Context sensitivity.**  For measures that are not context-free, a
recorded execution re-scores every heap entry in the new context
(like Greedy's re-score): the lattice dominance / interval soundness
arguments are context-independent, so only the keys need refreshing.

Observability: ``ordering.anyk.pops`` / ``successors`` /
``duplicates_skipped`` counters, an ``ordering.anyk.heap_peak`` gauge
and an ``ordering.anyk.delay`` histogram (seconds per emission, so
``Histogram.quantile`` yields delay percentiles) are registered on the
orderer's :class:`~repro.observability.metrics.MetricRegistry`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator, Optional

from repro.errors import InternalError
from repro.observability.tracing import Stopwatch
from repro.ordering.base import EmitCallback, OrderedPlan, PlanOrderer
from repro.reformulation.plans import PlanSpace, QueryPlan
from repro.sources.catalog import SourceDescription
from repro.utility.base import UtilityMeasure

__all__ = ["AnyKOrderer"]

#: Heap-entry kinds; concrete sorts before region at equal value.
_CONCRETE = 0
_REGION = 1


class _SpaceLattice:
    """One plan space viewed as an index-vector lattice.

    Holds the per-bucket source order and the precomputed suffix
    tuples ``sources[i][j:]`` so interval mode hands *identical* tuple
    objects to ``evaluate_slots`` for the same cone — which lets
    caching measures (e.g. ``CoverageUtility``'s slot cache,
    ``CachingUtilityMeasure``) recognize repeats.
    """

    __slots__ = ("space", "sources", "suffixes", "limits")

    def __init__(
        self, space: PlanSpace, utility: UtilityMeasure, lattice: bool
    ) -> None:
        self.space = space
        ordered: list[tuple[SourceDescription, ...]] = []
        for bucket in space.buckets:
            if lattice:
                # Descending preference: index 0 is the bucket's best
                # source, so utility is antitone in every coordinate.
                members = tuple(
                    sorted(
                        bucket.sources,
                        key=lambda s: (
                            utility.source_preference_key(bucket.index, s),
                            s.name,
                        ),
                        reverse=True,
                    )
                )
            else:
                members = bucket.sources
            ordered.append(members)
        self.sources = tuple(ordered)
        # Suffix tuples are an interval-mode concern; lattice mode
        # never touches them, keeping its first-plan setup to the sort.
        self.suffixes = (
            None
            if lattice
            else tuple(
                tuple(members[j:] for j in range(len(members)))
                for members in self.sources
            )
        )
        self.limits = tuple(len(members) for members in self.sources)

    def plan_at(self, vector: tuple[int, ...]) -> QueryPlan:
        return QueryPlan(
            tuple(self.sources[i][j] for i, j in enumerate(vector))
        )

    def slots_at(self, vector: tuple[int, ...]):
        if self.suffixes is None:
            raise InternalError("suffix slots requested in lattice mode")
        return tuple(self.suffixes[i][j] for i, j in enumerate(vector))

    def successors(
        self, vector: tuple[int, ...]
    ) -> Iterator[tuple[int, ...]]:
        """The Lawler successors: deviate exactly one coordinate."""
        for i, j in enumerate(vector):
            if j + 1 < self.limits[i]:
                yield vector[:i] + (j + 1,) + vector[i + 1 :]


class AnyKOrderer(PlanOrderer):
    """Ranked (any-k) enumeration by Lawler successors over buckets."""

    name = "anyk"

    def __init__(self, utility: UtilityMeasure, **instrumentation: object) -> None:
        super().__init__(utility, **instrumentation)
        self._pops = self.registry.counter("ordering.anyk.pops")
        self._successors = self.registry.counter("ordering.anyk.successors")
        self._duplicates = self.registry.counter(
            "ordering.anyk.duplicates_skipped"
        )
        self._heap_peak = self.registry.gauge("ordering.anyk.heap_peak")
        self._delay = self.registry.histogram("ordering.anyk.delay")

    def order(
        self,
        space: PlanSpace,
        k: int,
        on_emit: Optional[EmitCallback] = None,
    ) -> Iterator[OrderedPlan]:
        return self.order_spaces([space], k, on_emit)

    def order_spaces(
        self,
        spaces: "list[PlanSpace] | tuple[PlanSpace, ...]",
        k: int,
        on_emit: Optional[EmitCallback] = None,
    ) -> Iterator[OrderedPlan]:
        self._check_k(k)
        if self.utility.is_fully_monotonic:
            yield from self._order_lattice(spaces, k, on_emit)
        else:
            yield from self._order_intervals(spaces, k, on_emit)

    # -- shared plumbing ---------------------------------------------------------

    def _note_heap(self, heap: list) -> None:
        if len(heap) > self._heap_peak.value:
            self._heap_peak.set(len(heap))

    # -- lattice mode (fully monotonic measures) ----------------------------------

    def _order_lattice(
        self,
        spaces: "list[PlanSpace] | tuple[PlanSpace, ...]",
        k: int,
        on_emit: Optional[EmitCallback],
    ) -> Iterator[OrderedPlan]:
        context = self.utility.new_context()
        lattices = [
            _SpaceLattice(space, self.utility, lattice=True)
            for space in spaces
        ]
        tick = itertools.count()

        # Heap entries: (-value, kind, plan key, tick, space id, vector,
        # plan).  The leading triple is the documented tie-break; the
        # tick only guards against ever comparing the payload.
        def entry(space_id: int, vector: tuple[int, ...]) -> tuple:
            plan = lattices[space_id].plan_at(vector)
            value = self._evaluate_plan(plan, context)
            return (-value, _CONCRETE, plan.key, next(tick), space_id, vector, plan)

        seen: set[tuple[int, tuple[int, ...]]] = set()
        heap: list[tuple] = []
        for space_id, lattice in enumerate(lattices):
            root = (0,) * len(lattice.limits)
            seen.add((space_id, root))
            heap.append(entry(space_id, root))
        heapq.heapify(heap)
        self._note_heap(heap)

        carry = 0.0  # resumption work belongs to the *next* delay
        for rank in range(1, k + 1):
            if not heap:
                return
            with Stopwatch() as watch:
                neg_value, _kind, _key, _tick, space_id, vector, plan = (
                    heapq.heappop(heap)
                )
                self._pops.inc()
                self.stats.snapshot_first_plan()
            self._delay.observe(carry + watch.elapsed)
            yield OrderedPlan(plan, -neg_value, rank)
            # Resumed: report the emission first (lazy contract point
            # 2), then expand successors in the possibly-updated
            # context.
            with Stopwatch() as watch:
                if on_emit is None or on_emit(plan):
                    context.record(plan)
                    if not self.utility.context_free:
                        # Full monotonicity pins the per-bucket order
                        # across contexts, but the values may drift.
                        heap = [entry(item[4], item[5]) for item in heap]
                        heapq.heapify(heap)
                for successor in lattices[space_id].successors(vector):
                    if (space_id, successor) in seen:
                        self._duplicates.inc()
                        continue
                    seen.add((space_id, successor))
                    self._successors.inc()
                    heapq.heappush(heap, entry(space_id, successor))
                self._note_heap(heap)
            carry = watch.elapsed

    # -- interval mode (any measure with sound evaluate_slots) --------------------

    def _order_intervals(
        self,
        spaces: "list[PlanSpace] | tuple[PlanSpace, ...]",
        k: int,
        on_emit: Optional[EmitCallback],
    ) -> Iterator[OrderedPlan]:
        context = self.utility.new_context()
        lattices = [
            _SpaceLattice(space, self.utility, lattice=False)
            for space in spaces
        ]
        tick = itertools.count()

        # Entries: (-value, kind, corner plan key, tick, space id,
        # vector, plan-or-None).  A region's key is the *upper* bound
        # of its cone's utility interval — sound for every plan in it.
        def concrete_entry(space_id: int, vector: tuple[int, ...]) -> tuple:
            plan = lattices[space_id].plan_at(vector)
            value = self._evaluate_plan(plan, context)
            return (-value, _CONCRETE, plan.key, next(tick), space_id, vector, plan)

        def region_entry(space_id: int, vector: tuple[int, ...]) -> tuple:
            lattice = lattices[space_id]
            interval = self._evaluate_slots(lattice.slots_at(vector), context)
            corner_key = tuple(
                lattice.sources[i][j].name for i, j in enumerate(vector)
            )
            return (-interval.hi, _REGION, corner_key, next(tick), space_id, vector, None)

        corners_seen: set[tuple[int, tuple[int, ...]]] = set()
        regions_seen: set[tuple[int, tuple[int, ...]]] = set()
        heap: list[tuple] = []
        for space_id, lattice in enumerate(lattices):
            root = (0,) * len(lattice.limits)
            regions_seen.add((space_id, root))
            heap.append(region_entry(space_id, root))
        heapq.heapify(heap)
        self._note_heap(heap)

        carry = 0.0  # resumption work belongs to the *next* delay
        for rank in range(1, k + 1):
            emitted: Optional[tuple] = None
            with Stopwatch() as watch:
                while heap:
                    head = heapq.heappop(heap)
                    self._pops.inc()
                    if head[1] == _CONCRETE:
                        # Exact value >= every other entry's upper
                        # bound, and every unemitted plan sits under
                        # some entry: this is the conditional maximum.
                        emitted = head
                        break
                    self._refine(
                        head, lattices, heap,
                        corners_seen, regions_seen,
                        concrete_entry, region_entry,
                    )
                    self._note_heap(heap)
            if emitted is None:
                return
            neg_value, _kind, _key, _tick, space_id, vector, plan = emitted
            if plan is None:
                raise InternalError("concrete heap entry lost its plan")
            self.stats.snapshot_first_plan()
            self._delay.observe(carry + watch.elapsed)
            yield OrderedPlan(plan, -neg_value, rank)
            # Successor regions were already created when this plan's
            # region refined, so resumption only has to report and —
            # for context-sensitive measures — re-score the frontier.
            with Stopwatch() as watch:
                if on_emit is None or on_emit(plan):
                    context.record(plan)
                    if not self.utility.context_free:
                        heap = [
                            concrete_entry(item[4], item[5])
                            if item[1] == _CONCRETE
                            else region_entry(item[4], item[5])
                            for item in heap
                        ]
                        heapq.heapify(heap)
                        self._note_heap(heap)
            carry = watch.elapsed

    def _refine(
        self,
        head: tuple,
        lattices: list[_SpaceLattice],
        heap: list[tuple],
        corners_seen: set,
        regions_seen: set,
        concrete_entry,
        region_entry,
    ) -> None:
        """Split a region into its corner plan + successor regions.

        Coverage invariant: the region at ``v`` stands for the cone
        ``{w : w >= v}``; its corner ``v`` plus the cones at ``v + e_i``
        cover exactly the cone minus nothing — any ``w >= v`` other
        than ``v`` itself exceeds ``v`` in some coordinate ``i`` and so
        lies in the cone at ``v + e_i``.  Duplicate corners/regions are
        skipped: the earlier copy (or its refinement) already carries
        the coverage obligation.
        """
        _neg, _kind, _key, _tick, space_id, vector, _plan = head
        self.stats.refinements += 1
        if (space_id, vector) not in corners_seen:
            corners_seen.add((space_id, vector))
            heapq.heappush(heap, concrete_entry(space_id, vector))
        else:
            self._duplicates.inc()
        for successor in lattices[space_id].successors(vector):
            if (space_id, successor) in regions_seen:
                self._duplicates.inc()
                continue
            regions_seen.add((space_id, successor))
            self._successors.inc()
            heapq.heappush(heap, region_entry(space_id, successor))

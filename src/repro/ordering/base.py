"""Common interface and instrumentation for plan orderers.

The plan-ordering problem (paper, Definition 2.1): given a plan space
``S``, a utility measure ``u`` and a number ``k``, emit plans
``p1, ..., pk`` such that each ``pi`` maximizes
``u(p | p1, ..., p_{i-1}, Q)`` over the plans not yet emitted.

All orderers are generators: they lazily produce
:class:`OrderedPlan` records so callers can consume "the first few
best plans" without the orderer doing the work for all ``k`` up front
— the property the paper's motivation hinges on.

The ``on_emit`` callback implements the paper's soundness-interleaving
strategy (Section 2): the mediator tests each emitted plan for
soundness and returns False for plans it throws away, in which case
the plan is *not* recorded as executed and does not influence the
conditional utility of later plans.

Instrumentation: every orderer owns a
:class:`~repro.observability.metrics.MetricRegistry` (or shares one
passed in) and exposes :class:`OrderingStats`, a view over counters in
that registry, so per-algorithm accounting can be exported alongside
any other metrics.  A :class:`~repro.observability.tracing.Tracer` can
be attached for wall-time spans; the default is the free no-op tracer.
Utility caching (``cache=True``) wraps the measure in
:class:`~repro.observability.caching.CachingUtilityMeasure`, reporting
hit/miss counters through the same registry.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.errors import OrderingError
from repro.observability.caching import CachingUtilityMeasure
from repro.observability.metrics import MetricRegistry
from repro.observability.tracing import NOOP_TRACER, Stopwatch, Tracer
from repro.reformulation.plans import PlanSpace, QueryPlan
from repro.utility.base import ExecutionContext, Slots, UtilityMeasure
from repro.utility.intervals import Interval

#: Callback deciding whether an emitted plan counts as executed.
EmitCallback = Callable[[QueryPlan], bool]


@dataclass(frozen=True)
class OrderedPlan:
    """One entry of a plan ordering."""

    plan: QueryPlan
    utility: float
    rank: int

    def __str__(self) -> str:
        return f"#{self.rank} {self.plan} u={self.utility:.6g}"


class OrderingStats:
    """Instrumentation counters shared by all orderers.

    ``plans_evaluated`` counts utility evaluations of both concrete and
    abstract plans — the quantity the paper uses to explain the
    performance differences in Section 6 (e.g. "the number of plans
    evaluated by Streamer in the first iteration is less than 4% of the
    number of plans evaluated by PI").

    The counters live in a
    :class:`~repro.observability.metrics.MetricRegistry` under
    ``<prefix><field>`` names; this class is a field-per-counter view
    that keeps the original attribute API (``stats.refinements += 1``)
    working while the registry provides export and aggregation.
    """

    FIELDS = (
        "plans_evaluated",
        "concrete_evaluations",
        "abstract_evaluations",
        "refinements",
        "eliminations",
        "links_created",
        "links_recycled",
        "links_invalidated",
        "spaces_created",
        "first_plan_evaluations",
    )

    def __init__(
        self,
        registry: Optional[MetricRegistry] = None,
        prefix: str = "ordering.",
    ) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        self.prefix = prefix
        self._counters = {
            field: self.registry.counter(f"{prefix}{field}")
            for field in self.FIELDS
        }

    def note_abstract_evaluation(self) -> None:
        self._counters["plans_evaluated"].inc()
        self._counters["abstract_evaluations"].inc()

    def note_concrete_evaluation(self) -> None:
        self._counters["plans_evaluated"].inc()
        self._counters["concrete_evaluations"].inc()

    def snapshot_first_plan(self) -> None:
        if self._counters["first_plan_evaluations"].value == 0:
            self._counters["first_plan_evaluations"].set(
                self._counters["plans_evaluated"].value
            )

    def as_dict(self) -> dict[str, int]:
        return {
            field: int(self._counters[field].value) for field in self.FIELDS
        }

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items() if v)
        return f"<OrderingStats {inner or 'empty'}>"


def _stats_field(field: str) -> property:
    def getter(self: OrderingStats) -> int:
        return int(self._counters[field].value)

    def setter(self: OrderingStats, value: int) -> None:
        self._counters[field].set(value)

    return property(getter, setter)


for _field in OrderingStats.FIELDS:
    setattr(OrderingStats, _field, _stats_field(_field))
del _field


class PlanOrderer(ABC):
    """Base class of all ordering algorithms."""

    #: Human-readable algorithm name for experiment tables.
    name: str = "orderer"

    def __init__(
        self,
        utility: UtilityMeasure,
        *,
        cache: bool = False,
        registry: Optional[MetricRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        if cache and not isinstance(utility, CachingUtilityMeasure):
            utility = CachingUtilityMeasure(utility, registry=self.registry)
        self.utility = utility
        self.stats = OrderingStats(
            registry=self.registry, prefix=f"ordering.{self.name}."
        )

    # -- instrumented evaluation -------------------------------------------------

    def _evaluate_plan(self, plan: QueryPlan, context: ExecutionContext) -> float:
        """Point-evaluate *plan*, counting and (if enabled) tracing."""
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span("utility.eval"):
                value = self.utility.evaluate(plan, context)
        else:
            value = self.utility.evaluate(plan, context)
        self.stats.note_concrete_evaluation()
        return value

    def _evaluate_slots(self, slots: Slots, context: ExecutionContext) -> Interval:
        """Interval-evaluate an abstract plan's slots, counted/traced."""
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span("utility.eval_slots"):
                interval = self.utility.evaluate_slots(slots, context)
        else:
            interval = self.utility.evaluate_slots(slots, context)
        self.stats.note_abstract_evaluation()
        return interval

    @abstractmethod
    def order(
        self,
        space: PlanSpace,
        k: int,
        on_emit: Optional[EmitCallback] = None,
    ) -> Iterator[OrderedPlan]:
        """Lazily yield the ``k`` best plans in decreasing utility.

        May yield fewer than ``k`` entries when the space is smaller.
        Implementations must treat ``on_emit`` returning False as "plan
        discarded, not executed".

        **Lazy-iteration contract** (what the pipelined service layer
        builds on): implementations are generators, and

        1. no work for plan ``i+1`` happens until the consumer resumes
           the generator after receiving plan ``i`` — consuming a
           prefix never pays for the rest;
        2. ``on_emit(plan_i)`` is called at most once, *on resumption*
           after yielding plan ``i`` and before any utility evaluation
           for plan ``i+1`` — so a consumer that decides soundness
           between ``next()`` calls (sequentially or on a producer
           thread) always has the answer ready;
        3. abandoning the generator (``close()``/GC) is safe at any
           point and leaves the orderer reusable for a fresh call.

        ``tests/ordering/test_lazy_contract.py`` enforces this for
        every algorithm.
        """

    def order_spaces(
        self,
        spaces: "list[PlanSpace] | tuple[PlanSpace, ...]",
        k: int,
        on_emit: Optional[EmitCallback] = None,
    ) -> Iterator[OrderedPlan]:
        """Order the union of several plan spaces.

        This is the Section 7 adaptation to reformulation algorithms
        like MiniCon whose output is a *set* of plan spaces over
        generalized buckets; "modifying the ordering algorithms to
        handle a set of plan spaces (instead of one) is trivial".
        Subclasses override this with their natural generalization;
        spaces are assumed pairwise disjoint (no shared plan).
        """
        raise OrderingError(
            f"{type(self).__name__} does not support multiple plan spaces"
        )

    def order_list(
        self,
        space: PlanSpace,
        k: int,
        on_emit: Optional[EmitCallback] = None,
    ) -> list[OrderedPlan]:
        """Eagerly collect the ordering into a list."""
        with self.tracer.span(f"{self.name}.order", k=k):
            return list(self.order(space, k, on_emit))

    def order_spaces_list(
        self,
        spaces: "list[PlanSpace] | tuple[PlanSpace, ...]",
        k: int,
        on_emit: Optional[EmitCallback] = None,
    ) -> list[OrderedPlan]:
        """Eagerly collect a multi-space ordering into a list."""
        with self.tracer.span(f"{self.name}.order_spaces", k=k):
            return list(self.order_spaces(spaces, k, on_emit))

    @staticmethod
    def _check_k(k: int) -> None:
        if k <= 0:
            raise OrderingError(f"k must be positive, got {k}")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} utility={self.utility.name!r}>"


def timed_ordering(
    orderer: PlanOrderer,
    space: PlanSpace,
    k: int,
) -> tuple[list[OrderedPlan], float]:
    """Run an ordering to completion, returning (plans, elapsed seconds).

    Timing goes through the observability
    :class:`~repro.observability.tracing.Stopwatch` (the same primitive
    spans use), and the run is recorded as a ``<name>.order`` span on
    the orderer's tracer when tracing is enabled.
    """
    with Stopwatch() as watch:
        plans = orderer.order_list(space, k)
    return plans, watch.elapsed

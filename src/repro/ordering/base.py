"""Common interface and instrumentation for plan orderers.

The plan-ordering problem (paper, Definition 2.1): given a plan space
``S``, a utility measure ``u`` and a number ``k``, emit plans
``p1, ..., pk`` such that each ``pi`` maximizes
``u(p | p1, ..., p_{i-1}, Q)`` over the plans not yet emitted.

All orderers are generators: they lazily produce
:class:`OrderedPlan` records so callers can consume "the first few
best plans" without the orderer doing the work for all ``k`` up front
— the property the paper's motivation hinges on.

The ``on_emit`` callback implements the paper's soundness-interleaving
strategy (Section 2): the mediator tests each emitted plan for
soundness and returns False for plans it throws away, in which case
the plan is *not* recorded as executed and does not influence the
conditional utility of later plans.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.errors import OrderingError
from repro.reformulation.plans import PlanSpace, QueryPlan
from repro.utility.base import UtilityMeasure

#: Callback deciding whether an emitted plan counts as executed.
EmitCallback = Callable[[QueryPlan], bool]


@dataclass(frozen=True)
class OrderedPlan:
    """One entry of a plan ordering."""

    plan: QueryPlan
    utility: float
    rank: int

    def __str__(self) -> str:
        return f"#{self.rank} {self.plan} u={self.utility:.6g}"


@dataclass
class OrderingStats:
    """Instrumentation counters shared by all orderers.

    ``plans_evaluated`` counts utility evaluations of both concrete and
    abstract plans — the quantity the paper uses to explain the
    performance differences in Section 6 (e.g. "the number of plans
    evaluated by Streamer in the first iteration is less than 4% of the
    number of plans evaluated by PI").
    """

    plans_evaluated: int = 0
    concrete_evaluations: int = 0
    abstract_evaluations: int = 0
    refinements: int = 0
    eliminations: int = 0
    links_created: int = 0
    links_recycled: int = 0
    links_invalidated: int = 0
    spaces_created: int = 0
    #: Evaluations performed before the first plan was emitted.
    first_plan_evaluations: int = 0

    def note_abstract_evaluation(self) -> None:
        self.plans_evaluated += 1
        self.abstract_evaluations += 1

    def note_concrete_evaluation(self) -> None:
        self.plans_evaluated += 1
        self.concrete_evaluations += 1

    def snapshot_first_plan(self) -> None:
        if self.first_plan_evaluations == 0:
            self.first_plan_evaluations = self.plans_evaluated

    def as_dict(self) -> dict[str, int]:
        return {
            "plans_evaluated": self.plans_evaluated,
            "concrete_evaluations": self.concrete_evaluations,
            "abstract_evaluations": self.abstract_evaluations,
            "refinements": self.refinements,
            "eliminations": self.eliminations,
            "links_created": self.links_created,
            "links_recycled": self.links_recycled,
            "links_invalidated": self.links_invalidated,
            "spaces_created": self.spaces_created,
            "first_plan_evaluations": self.first_plan_evaluations,
        }


class PlanOrderer(ABC):
    """Base class of all ordering algorithms."""

    #: Human-readable algorithm name for experiment tables.
    name: str = "orderer"

    def __init__(self, utility: UtilityMeasure) -> None:
        self.utility = utility
        self.stats = OrderingStats()

    @abstractmethod
    def order(
        self,
        space: PlanSpace,
        k: int,
        on_emit: Optional[EmitCallback] = None,
    ) -> Iterator[OrderedPlan]:
        """Lazily yield the ``k`` best plans in decreasing utility.

        May yield fewer than ``k`` entries when the space is smaller.
        Implementations must treat ``on_emit`` returning False as "plan
        discarded, not executed".
        """

    def order_spaces(
        self,
        spaces: "list[PlanSpace] | tuple[PlanSpace, ...]",
        k: int,
        on_emit: Optional[EmitCallback] = None,
    ) -> Iterator[OrderedPlan]:
        """Order the union of several plan spaces.

        This is the Section 7 adaptation to reformulation algorithms
        like MiniCon whose output is a *set* of plan spaces over
        generalized buckets; "modifying the ordering algorithms to
        handle a set of plan spaces (instead of one) is trivial".
        Subclasses override this with their natural generalization;
        spaces are assumed pairwise disjoint (no shared plan).
        """
        raise OrderingError(
            f"{type(self).__name__} does not support multiple plan spaces"
        )

    def order_list(
        self,
        space: PlanSpace,
        k: int,
        on_emit: Optional[EmitCallback] = None,
    ) -> list[OrderedPlan]:
        """Eagerly collect the ordering into a list."""
        return list(self.order(space, k, on_emit))

    def order_spaces_list(
        self,
        spaces: "list[PlanSpace] | tuple[PlanSpace, ...]",
        k: int,
        on_emit: Optional[EmitCallback] = None,
    ) -> list[OrderedPlan]:
        """Eagerly collect a multi-space ordering into a list."""
        return list(self.order_spaces(spaces, k, on_emit))

    @staticmethod
    def _check_k(k: int) -> None:
        if k <= 0:
            raise OrderingError(f"k must be positive, got {k}")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} utility={self.utility.name!r}>"


def timed_ordering(
    orderer: PlanOrderer,
    space: PlanSpace,
    k: int,
) -> tuple[list[OrderedPlan], float]:
    """Run an ordering to completion, returning (plans, elapsed seconds)."""
    start = time.perf_counter()
    plans = orderer.order_list(space, k)
    return plans, time.perf_counter() - start

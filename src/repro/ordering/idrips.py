"""iDrips: iterated Drips (paper, Section 5.2).

iDrips finds the best plan with Drips, removes it from its plan space
(splitting the space into disjoint subspaces, as Greedy does), then
re-abstracts the sources of the new subspaces and runs Drips again
over the pool of all spaces' top abstract plans for the next best
plan, and so on.

Every iteration rebuilds the abstract candidate pool and recomputes
utility intervals from scratch — the duplicated work whose elimination
motivates Streamer.  In exchange iDrips is applicable whenever a sound
interval evaluation exists, including measures *without*
utility-diminishing returns (e.g. cost with caching, Figures 6.g-i).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.ordering.abstraction import (
    AbstractionHeuristic,
    AbstractPlan,
    AbstractSource,
    OutputCountHeuristic,
    build_trees,
)
from repro.ordering.base import EmitCallback, OrderedPlan, PlanOrderer
from repro.ordering.drips import drips_search
from repro.reformulation.plans import PlanSpace
from repro.utility.base import UtilityMeasure


class IDripsOrderer(PlanOrderer):
    """Order plans by repeatedly applying Drips with space splitting."""

    name = "iDrips"

    def __init__(
        self,
        utility: UtilityMeasure,
        heuristic: Optional[AbstractionHeuristic] = None,
        **instrumentation: object,
    ) -> None:
        super().__init__(utility, **instrumentation)
        self.heuristic = heuristic or OutputCountHeuristic()

    def order(
        self,
        space: PlanSpace,
        k: int,
        on_emit: Optional[EmitCallback] = None,
    ) -> Iterator[OrderedPlan]:
        return self.order_spaces([space], k, on_emit)

    def order_spaces(
        self,
        initial_spaces: "list[PlanSpace] | tuple[PlanSpace, ...]",
        k: int,
        on_emit: Optional[EmitCallback] = None,
    ) -> Iterator[OrderedPlan]:
        self._check_k(k)
        context = self.utility.new_context()
        spaces: dict[int, tuple[PlanSpace, tuple[AbstractSource, ...]]] = {
            index: (space, build_trees(space.buckets, self.heuristic))
            for index, space in enumerate(initial_spaces)
        }
        next_id = len(spaces)

        for rank in range(1, k + 1):
            if not spaces:
                return
            # Fresh pool each iteration: utilities may have changed and
            # iDrips deliberately rebuilds everything (Section 5.2).
            pool = [
                AbstractPlan(trees, space_id)
                for space_id, (_space, trees) in spaces.items()
            ]
            with self.tracer.span("idrips.iteration", rank=rank):
                winner, value = drips_search(
                    pool, self.utility, context, self.stats, self.tracer
                )
            plan = winner.concrete_plan()
            self.stats.snapshot_first_plan()
            yield OrderedPlan(plan, value, rank)

            owner_space, _trees = spaces.pop(winner.space_id)
            for subspace in owner_space.split_off(plan):
                spaces[next_id] = (
                    subspace,
                    build_trees(subspace.buckets, self.heuristic),
                )
                next_id += 1
                self.stats.spaces_created += 1

            if on_emit is None or on_emit(plan):
                context.record(plan)

"""The Greedy algorithm (paper, Section 4).

Applicable when the utility measure is *fully monotonic*: each bucket
admits a total preference order on its sources such that upgrading a
source always improves the plan, regardless of the executed set.  Then

* the best plan of a plan space is found by picking each bucket's best
  source (local comparisons only);
* removing an emitted plan splits its space into at most ``m`` disjoint
  subspaces (:meth:`~repro.reformulation.plans.PlanSpace.split_off`);
* a priority queue over the spaces' best plans yields the global
  ordering.

The paper proves Greedy returns the correct first ``k`` plans in
``O(m * n^2 * k^2)`` time; with the heap used here the typical cost is
``O(k * n * (log(k n) + m))`` where ``m`` is the largest bucket size
and ``n`` the query length.

Full monotonicity guarantees the per-bucket *order* is stable across
execution contexts, but for measures that are monotonic yet not
context-free the utility *values* may still drift, so the heap is
re-scored after each recorded execution.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator, Optional

from repro.errors import NotApplicableError
from repro.ordering.base import EmitCallback, OrderedPlan, PlanOrderer
from repro.reformulation.plans import PlanSpace, QueryPlan
from repro.utility.base import UtilityMeasure


def best_plan_of(space: PlanSpace, utility: UtilityMeasure) -> QueryPlan:
    """Pick each bucket's best source by the measure's preference key."""
    chosen = []
    for bucket in space.buckets:
        best = max(
            bucket.sources,
            key=lambda s: (utility.source_preference_key(bucket.index, s), s.name),
        )
        chosen.append(best)
    return QueryPlan(tuple(chosen))


class GreedyOrderer(PlanOrderer):
    """Exact ordering for fully monotonic utility measures."""

    name = "greedy"

    def __init__(self, utility: UtilityMeasure, **instrumentation: object) -> None:
        if not utility.is_fully_monotonic:
            raise NotApplicableError(
                f"Greedy requires a fully monotonic measure; "
                f"{utility.name!r} is not"
            )
        super().__init__(utility, **instrumentation)

    def order(
        self,
        space: PlanSpace,
        k: int,
        on_emit: Optional[EmitCallback] = None,
    ) -> Iterator[OrderedPlan]:
        return self.order_spaces([space], k, on_emit)

    def order_spaces(
        self,
        spaces: "list[PlanSpace] | tuple[PlanSpace, ...]",
        k: int,
        on_emit: Optional[EmitCallback] = None,
    ) -> Iterator[OrderedPlan]:
        self._check_k(k)
        context = self.utility.new_context()
        counter = itertools.count()

        def entry(candidate_space: PlanSpace) -> tuple:
            plan = best_plan_of(candidate_space, self.utility)
            value = self._evaluate_plan(plan, context)
            # Ties broken by plan key for determinism.
            return (-value, plan.key, next(counter), plan, candidate_space)

        heap = [entry(space) for space in spaces]
        heapq.heapify(heap)
        for rank in range(1, k + 1):
            if not heap:
                return
            neg_value, _key, _tick, plan, owner = heapq.heappop(heap)
            self.stats.snapshot_first_plan()
            yield OrderedPlan(plan, -neg_value, rank)
            for subspace in owner.split_off(plan):
                self.stats.spaces_created += 1
                heapq.heappush(heap, entry(subspace))
            if on_emit is None or on_emit(plan):
                context.record(plan)
                if not self.utility.context_free:
                    # Monotonicity fixes the per-bucket order, but the
                    # utility values may shift with the context.
                    heap = [entry(item[4]) for item in heap]
                    heapq.heapify(heap)

"""The dominance graph maintained by Streamer (paper, Section 5.2).

Nodes are (abstract or concrete) plans with a cached utility interval;
edges are *domination links* ``p -> q`` recording that, at link
creation time, every concrete plan of ``p`` had utility at least that
of every concrete plan of ``q`` (interval dominance, ``lo_p >= hi_q``).

Each link carries the set ``E(p, q)`` of plans that have been removed
(executed) since the link was created.  A link stays valid as long as
some concrete plan of ``p`` is independent of every plan in
``E(p, q)``: that witness's utility hasn't changed, and under
utility-diminishing returns the utilities in ``q`` can only have
dropped, so the domination still holds (the paper's argument (a)-(c)
in Section 5.2).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import OrderingError
from repro.observability.metrics import MetricRegistry
from repro.ordering.abstraction import AbstractPlan
from repro.reformulation.plans import QueryPlan
from repro.utility.intervals import Interval

#: Node identity: the per-slot member-name tuples.
NodeKey = tuple[tuple[str, ...], ...]


class Node:
    """A plan in the dominance graph with its cached interval.

    ``interval`` is None when the utility is unknown or has been
    invalidated ("set u(e) <- nil" in Figure 5).  A non-None interval
    is always *current*: every removal invalidates the intervals of all
    possibly-affected nodes.
    """

    __slots__ = ("plan", "interval", "key", "version")

    def __init__(self, plan: AbstractPlan) -> None:
        self.plan = plan
        self.interval: Optional[Interval] = None
        self.key: NodeKey = plan.key
        #: Bumped on every interval change; lets heap entries detect
        #: that they are stale without eager deletion.
        self.version = 0

    @property
    def is_concrete(self) -> bool:
        return self.plan.is_concrete

    def __repr__(self) -> str:
        return f"<Node {self.plan} u={self.interval}>"


class DominanceGraph:
    """Nodes, domination links, and the E(p, q) bookkeeping.

    When a :class:`~repro.observability.metrics.MetricRegistry` is
    passed, the graph reports its churn (nodes/links added and removed)
    and current size under ``dominance.*`` metric names — the per-stage
    accounting ranked-enumeration systems use to explain where work
    goes.
    """

    def __init__(self, registry: Optional[MetricRegistry] = None) -> None:
        self._nodes: dict[NodeKey, Node] = {}
        # out[p][q] = E(p, q): plans removed since the link was created.
        self._out: dict[NodeKey, dict[NodeKey, list[QueryPlan]]] = {}
        self._in_degree: dict[NodeKey, int] = {}
        self._nondominated: set[NodeKey] = set()
        metrics = registry if registry is not None else MetricRegistry()
        self._nodes_added = metrics.counter("dominance.nodes_added")
        self._nodes_removed = metrics.counter("dominance.nodes_removed")
        self._links_added = metrics.counter("dominance.links_added")
        self._links_removed = metrics.counter("dominance.links_removed")
        self._node_gauge = metrics.gauge("dominance.nodes")
        self._link_gauge = metrics.gauge("dominance.links")

    # -- nodes ------------------------------------------------------------------

    def add_plan(self, plan: AbstractPlan) -> Node:
        node = Node(plan)
        if node.key in self._nodes:
            raise OrderingError(f"duplicate node {plan}")
        self._nodes[node.key] = node
        self._out[node.key] = {}
        self._in_degree[node.key] = 0
        self._nondominated.add(node.key)
        self._nodes_added.inc()
        self._node_gauge.set(len(self._nodes))
        return node

    def remove_node(self, node: Node) -> list[Node]:
        """Remove a node (must be nondominated) and its outgoing links.

        Returns the nodes that became nondominated as a result.
        """
        if self._in_degree[node.key] != 0:
            raise OrderingError(f"cannot remove dominated node {node.plan}")
        freed = []
        dropped_links = len(self._out[node.key])
        for target_key in self._out.pop(node.key):
            self._in_degree[target_key] -= 1
            if self._in_degree[target_key] == 0:
                self._nondominated.add(target_key)
                freed.append(self._nodes[target_key])
        del self._nodes[node.key]
        del self._in_degree[node.key]
        self._nondominated.discard(node.key)
        self._nodes_removed.inc()
        self._links_removed.inc(dropped_links)
        self._node_gauge.set(len(self._nodes))
        self._link_gauge.dec(dropped_links)
        return freed

    def __contains__(self, key: NodeKey) -> bool:
        return key in self._nodes

    def get(self, key: NodeKey) -> Optional[Node]:
        return self._nodes.get(key)

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def is_dominated(self, node: Node) -> bool:
        return self._in_degree[node.key] > 0

    def nondominated(self) -> list[Node]:
        return [self._nodes[key] for key in self._nondominated]

    # -- links ------------------------------------------------------------------

    def has_link(self, source: Node, target: Node) -> bool:
        return target.key in self._out.get(source.key, {})

    def add_link(self, source: Node, target: Node) -> None:
        """Create ``source -> target`` with an empty E set."""
        if source.key == target.key:
            raise OrderingError("self-domination link")
        targets = self._out[source.key]
        if target.key in targets:
            return
        targets[target.key] = []
        self._in_degree[target.key] += 1
        self._nondominated.discard(target.key)
        self._links_added.inc()
        self._link_gauge.inc()

    def remove_link(self, source_key: NodeKey, target_key: NodeKey) -> None:
        del self._out[source_key][target_key]
        self._in_degree[target_key] -= 1
        if self._in_degree[target_key] == 0:
            self._nondominated.add(target_key)
        self._links_removed.inc()
        self._link_gauge.dec()

    def links(self) -> list[tuple[Node, Node, list[QueryPlan]]]:
        """All links as (source node, target node, E set) triples."""
        out = []
        for source_key, targets in self._out.items():
            for target_key, removed in targets.items():
                out.append(
                    (self._nodes[source_key], self._nodes[target_key], removed)
                )
        return out

    def link_count(self) -> int:
        return sum(len(targets) for targets in self._out.values())


def head_certainly_best(
    head: Interval, rest: "list[Interval] | tuple[Interval, ...]"
) -> bool:
    """Is a re-scored head still provably the best remaining plan?

    The adaptive orderer's trigger test (the same interval-dominance
    primitive Streamer's links use, applied to "has the ranking
    provably shifted?"): the current head keeps streaming only when its
    utility interval dominates *every* residual subspace's interval —
    ``head.lo >= sub.hi`` for each.  One overlapping interval means
    some not-yet-emitted plan may now beat the head, and the caller
    must re-sort.  With an empty *rest* the head is trivially best.
    """
    return all(head.dominates(interval) for interval in rest)

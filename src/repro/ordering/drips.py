"""Drips: abstraction-based search for the single best plan (Section 5.1).

Drips maintains a pool of abstract plans with utility intervals and
repeatedly evaluates, eliminates dominated plans (``p.lo >= q.hi``
discards all of ``q``'s concrete plans without computing their
utilities), and refines a surviving abstract plan, until one concrete
plan remains.

The implementation realizes this as *best-first search*: candidates
live in a priority queue ordered by interval upper bound; the top is
refined if abstract and returned if concrete.  This visits exactly the
candidates Drips' refine-the-most-promising policy visits, and the
never-popped heap remainder is the set Drips would have eliminated —
dominance elimination performed lazily in ``O(log n)`` per step
instead of by quadratic scanning.  A popped concrete plan has the
maximal upper bound, hence utility at least every other candidate's
whole interval: it is the best plan.

Ties are resolved by the plans' deterministic keys, so the search is
fully reproducible.

:func:`drips_search` is shared by :class:`DripsPlanner` (one space,
one winner) and :class:`~repro.ordering.idrips.IDripsOrderer` (a pool
of top plans from several spaces).
"""

from __future__ import annotations

import heapq
from typing import Optional, Sequence

from repro.errors import OrderingError
from repro.observability.metrics import MetricRegistry
from repro.observability.tracing import NOOP_TRACER, Tracer
from repro.ordering.abstraction import (
    AbstractionHeuristic,
    AbstractPlan,
    OutputCountHeuristic,
    top_plan,
)
from repro.ordering.base import OrderingStats
from repro.reformulation.plans import PlanSpace, QueryPlan
from repro.utility.base import ExecutionContext, UtilityMeasure
from repro.utility.intervals import Interval


def evaluate_plan_interval(
    plan: AbstractPlan,
    utility: UtilityMeasure,
    context: ExecutionContext,
    stats: OrderingStats,
    tracer: Tracer = NOOP_TRACER,
) -> Interval:
    """Interval of an abstract plan; point interval of a concrete one."""
    if plan.is_concrete:
        if tracer.enabled:
            with tracer.span("utility.eval"):
                value = utility.evaluate(plan.concrete_plan(), context)
        else:
            value = utility.evaluate(plan.concrete_plan(), context)
        stats.note_concrete_evaluation()
        return Interval.point(value)
    if tracer.enabled:
        with tracer.span("utility.eval_slots"):
            interval = utility.evaluate_slots(plan.slots_members(), context)
    else:
        interval = utility.evaluate_slots(plan.slots_members(), context)
    stats.note_abstract_evaluation()
    return interval


def drips_search(
    pool: Sequence[AbstractPlan],
    utility: UtilityMeasure,
    context: ExecutionContext,
    stats: OrderingStats,
    tracer: Tracer = NOOP_TRACER,
) -> tuple[AbstractPlan, float]:
    """Find the best concrete plan represented by *pool*.

    Returns the winning (concrete) abstract plan and its utility.
    """
    if not pool:
        raise OrderingError("drips_search needs a non-empty pool")

    heap: list[tuple[float, tuple, AbstractPlan, Interval]] = []
    for plan in pool:
        interval = evaluate_plan_interval(plan, utility, context, stats, tracer)
        heapq.heappush(heap, (-interval.hi, plan.key, plan, interval))

    while heap:
        _neg_hi, _key, plan, interval = heapq.heappop(heap)
        if plan.is_concrete:
            # Everything still on the heap is dominated by this plan.
            stats.eliminations += len(heap)
            return plan, interval.lo
        stats.refinements += 1
        for child in plan.refine():
            child_interval = evaluate_plan_interval(
                child, utility, context, stats, tracer
            )
            heapq.heappush(
                heap, (-child_interval.hi, child.key, child, child_interval)
            )
    raise OrderingError("drips_search exhausted the pool without a winner")


class DripsPlanner:
    """Find the best plan of a plan space by abstraction.

    Not a :class:`~repro.ordering.base.PlanOrderer`: Drips "is not
    suited for data integration because it finds only the first plan
    in the ordering" (Section 5.2).  It exists as the building block
    of iDrips and Streamer and as a subject of the Section 5.1 worked
    example.
    """

    name = "drips"

    def __init__(
        self,
        utility: UtilityMeasure,
        heuristic: Optional[AbstractionHeuristic] = None,
        *,
        registry: Optional[MetricRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.utility = utility
        self.heuristic = heuristic or OutputCountHeuristic()
        self.registry = registry if registry is not None else MetricRegistry()
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.stats = OrderingStats(
            registry=self.registry, prefix=f"ordering.{self.name}."
        )

    def best_plan(
        self, space: PlanSpace, context: Optional[ExecutionContext] = None
    ) -> tuple[QueryPlan, float]:
        """The highest-utility plan of *space* and its utility."""
        if context is None:
            context = self.utility.new_context()
        with self.tracer.span("drips.best_plan"):
            root = top_plan(space.buckets, self.heuristic)
            winner, value = drips_search(
                [root], self.utility, context, self.stats, self.tracer
            )
        return winner.concrete_plan(), value

"""Source abstraction for Drips-family algorithms (paper, Section 5).

Sources of a bucket are organized into a binary *merge tree*: the root
is an abstract source representing the whole bucket, leaves are the
concrete sources, and refining an abstract source replaces it by its
two children.  An *abstract plan* picks one (abstract or concrete)
source per bucket and represents the Cartesian product of the member
sets; refining one slot splits it into two abstract plans.

Which sources get grouped together is the *abstraction heuristic*.
The paper's experiments group "sources based on their similarity wrt
the number of expected output tuples" (Section 6) —
:class:`OutputCountHeuristic`.  Two alternatives are provided for the
ablation study: grouping by extension similarity (good for coverage)
and random grouping (a worst case).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import OrderingError
from repro.reformulation.plans import Bucket, QueryPlan
from repro.sources.catalog import SourceDescription
from repro.sources.overlap import OverlapModel
from repro.utility.base import Slots


@dataclass(frozen=True)
class AbstractSource:
    """A node of a bucket's merge tree.

    ``members`` is the set of concrete sources below this node (in
    tree order); leaves have exactly one member and no children.
    """

    bucket_index: int
    members: tuple[SourceDescription, ...]
    children: tuple["AbstractSource", ...] = ()

    def __post_init__(self) -> None:
        if not self.members:
            raise OrderingError("abstract source with no members")
        if self.children:
            child_members = tuple(
                m for child in self.children for m in child.members
            )
            if child_members != self.members:
                raise OrderingError(
                    "children members must concatenate to the parent's"
                )

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def source(self) -> SourceDescription:
        """The concrete source of a leaf node."""
        if not self.is_leaf or len(self.members) != 1:
            raise OrderingError("only leaves expose a concrete source")
        return self.members[0]

    @property
    def key(self) -> tuple[str, ...]:
        return tuple(m.name for m in self.members)

    def __len__(self) -> int:
        return len(self.members)

    def __str__(self) -> str:
        return "{" + ",".join(self.key) + "}"


def balanced_tree(
    bucket_index: int, sources: Sequence[SourceDescription]
) -> AbstractSource:
    """Build a balanced binary merge tree over *sources* in the given order.

    Adjacent sources in the ordering end up under the same low-level
    abstract source, so heuristics work by choosing the ordering:
    similar sources should be adjacent.
    """
    if not sources:
        raise OrderingError("cannot abstract an empty bucket")
    if len(sources) == 1:
        return AbstractSource(bucket_index, (sources[0],))
    mid = len(sources) // 2
    left = balanced_tree(bucket_index, sources[:mid])
    right = balanced_tree(bucket_index, sources[mid:])
    return AbstractSource(bucket_index, tuple(sources), (left, right))


class AbstractionHeuristic(ABC):
    """Chooses how a bucket's sources are grouped into the merge tree."""

    name: str = "heuristic"

    @abstractmethod
    def order_bucket(self, bucket: Bucket) -> Sequence[SourceDescription]:
        """Return the bucket's sources so that similar ones are adjacent."""

    def build(self, bucket: Bucket) -> AbstractSource:
        return balanced_tree(bucket.index, tuple(self.order_bucket(bucket)))


class OutputCountHeuristic(AbstractionHeuristic):
    """The paper's heuristic: group by expected output-tuple count."""

    name = "output-count"

    def order_bucket(self, bucket: Bucket) -> Sequence[SourceDescription]:
        return sorted(bucket.sources, key=lambda s: (s.stats.n_tuples, s.name))


class ExtensionSimilarityHeuristic(AbstractionHeuristic):
    """Group by extension layout in the overlap model.

    Sources are ordered by the position of their extension's lowest
    set bit (a cheap proxy for "which region of the universe the
    source lives in"), then by size.  With the group-structured
    synthetic generator this clusters same-group sources, which have
    nearly identical extensions.
    """

    name = "extension-similarity"

    def __init__(self, model: OverlapModel) -> None:
        self.model = model

    def order_bucket(self, bucket: Bucket) -> Sequence[SourceDescription]:
        def sort_key(source: SourceDescription) -> tuple[int, int, str]:
            mask = self.model.extension(bucket.index, source.name)
            lowest = (mask & -mask).bit_length() if mask else 0
            return (lowest, mask.bit_count(), source.name)

        return sorted(bucket.sources, key=sort_key)


class RandomHeuristic(AbstractionHeuristic):
    """Random grouping: the ablation's no-information baseline."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def order_bucket(self, bucket: Bucket) -> Sequence[SourceDescription]:
        rng = random.Random(f"{self.seed}:{bucket.index}:{len(bucket)}")
        shuffled = list(bucket.sources)
        rng.shuffle(shuffled)
        return shuffled


@dataclass(frozen=True)
class AbstractPlan:
    """One (abstract or concrete) source per bucket.

    ``space_id`` tags which plan space the plan came from; iDrips uses
    it to know which space to split after a win.
    """

    slots: tuple[AbstractSource, ...]
    space_id: int = 0

    @property
    def is_concrete(self) -> bool:
        return all(slot.is_leaf for slot in self.slots)

    @property
    def size(self) -> int:
        """Number of concrete plans this abstract plan represents."""
        total = 1
        for slot in self.slots:
            total *= len(slot)
        return total

    @property
    def key(self) -> tuple[tuple[str, ...], ...]:
        """Deterministic identity used for tie-breaking."""
        return tuple(slot.key for slot in self.slots)

    def concrete_plan(self) -> QueryPlan:
        if not self.is_concrete:
            raise OrderingError(f"plan {self} is still abstract")
        return QueryPlan(tuple(slot.source for slot in self.slots))

    def slots_members(self) -> Slots:
        """The per-slot member tuples handed to utility measures."""
        return tuple(slot.members for slot in self.slots)

    def refinement_slot(self) -> int:
        """Default policy: refine the slot with the most members."""
        widths = [len(slot) if not slot.is_leaf else 0 for slot in self.slots]
        best = max(widths)
        if best == 0:
            raise OrderingError(f"plan {self} has nothing to refine")
        return widths.index(best)

    def refine(self, slot: Optional[int] = None) -> list["AbstractPlan"]:
        """Replace one abstract slot by its children (paper, 5.1)."""
        if slot is None:
            slot = self.refinement_slot()
        chosen = self.slots[slot]
        if chosen.is_leaf:
            raise OrderingError(f"slot {slot} of {self} is already concrete")
        return [
            AbstractPlan(
                self.slots[:slot] + (child,) + self.slots[slot + 1 :],
                self.space_id,
            )
            for child in chosen.children
        ]

    def __str__(self) -> str:
        return "".join(str(slot) for slot in self.slots)


def build_trees(
    buckets: Sequence[Bucket], heuristic: AbstractionHeuristic
) -> tuple[AbstractSource, ...]:
    """One merge tree per bucket."""
    return tuple(heuristic.build(bucket) for bucket in buckets)


def top_plan(
    buckets: Sequence[Bucket],
    heuristic: AbstractionHeuristic,
    space_id: int = 0,
) -> AbstractPlan:
    """The fully abstract plan representing a whole plan space."""
    return AbstractPlan(build_trees(buckets, heuristic), space_id)

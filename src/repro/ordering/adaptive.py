"""Adaptive mid-stream re-ordering: the health→ordering feedback loop.

The paper fixes a plan order once, under static catalog estimates.  A
serving mediator knows better *while the stream is running*: PR 4's
:class:`~repro.resilience.health.SourceHealthTracker` observes every
execution, and :class:`~repro.resilience.measure.HealthAwareMeasure`
already substitutes the observed failure rates into utility
evaluations.  What was missing is the feedback edge — nothing
*re-ranked the remaining plans* when health moved, so a stream ordered
before an outage keeps paying for doomed high-priority plans.

:class:`AdaptiveOrderer` closes the loop as a wrapper around any other
orderer:

* it forwards the inner orderer's stream untouched while the
  resilience layer's :class:`~repro.resilience.health.HealthEpoch` is
  unchanged — one integer comparison per plan;
* when the epoch moved, it re-scores the would-be head under the live
  measure and interval-evaluates the residual plan subspaces
  (maintained with :meth:`~repro.reformulation.plans.PlanSpace.split_off`,
  exactly the bookkeeping Greedy and iDrips use).  If the head's
  re-scored utility still dominates every residual interval
  (:func:`~repro.ordering.dominance.head_certainly_best` — the Drips
  dominance test), the ranking provably did not shift and the stream
  continues (a *suppressed resort*, O(frontier) work, no re-sort);
* only when some interval overlaps does it abandon the inner
  generator and restart a fresh inner orderer over the residual
  subspaces (every orderer supports ``order_spaces``, the Section 7
  multi-space generalization), replaying the executed plans into the
  new ordering context so conditional measures keep their
  coverage-already-attained semantics.

Two invariants make this robustness rather than a heuristic:

* **Healthy-path identity.**  The epoch never moves while every source
  is healthy (the manager's bump rule), so the emitted stream — plans,
  utilities, ranks — is byte-identical to the unwrapped inner orderer.
* **Lazy-iteration contract.**  The wrapper is itself a conforming
  orderer: ``on_emit`` is asked once per plan on resumption, no work
  for plan ``i+1`` happens before that, and abandoning the generator
  is safe (``tests/ordering/test_lazy_contract.py`` covers it like any
  other algorithm).

Instrumentation lands under ``ordering.adaptive.*``: ``reorders``
(inner restarts), ``epoch_checks`` (integer comparisons),
``suppressed_resorts`` (epoch moved, dominance held), ``head_churn``
(re-sorts that actually changed the next plan).  With a journal bound
(:meth:`AdaptiveOrderer.bind_journal`), each re-sort emits a
``plan.reordered`` event carrying its shift witness.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence

from repro.observability.metrics import MetricRegistry
from repro.observability.tracing import Tracer
from repro.ordering.base import EmitCallback, OrderedPlan, PlanOrderer
from repro.ordering.dominance import head_certainly_best
from repro.reformulation.plans import PlanSpace, QueryPlan
from repro.utility.base import (
    ExecutionContext,
    PlanLike,
    Slots,
    UtilityMeasure,
)
from repro.utility.intervals import Interval

__all__ = ["AdaptiveOrderer"]


class _ReplayMeasure(UtilityMeasure):
    """A measure whose fresh contexts start with plans already executed.

    Restarting an inner orderer mid-stream must not forget the stream's
    past: conditional measures (coverage, caching variants) rank the
    *remaining* plans given everything already executed.  Orderers
    build their context internally via ``utility.new_context()``, so
    this wrapper pre-records the executed plans into every context it
    hands out and delegates everything else verbatim.

    With an empty replay list the wrapper is behaviorally identical to
    the inner measure — the healthy-path identity guarantee rests on
    that.
    """

    def __init__(
        self, inner: UtilityMeasure, executed: Sequence[PlanLike]
    ) -> None:
        self.inner = inner
        self.executed = tuple(executed)
        self.name = inner.name
        self.is_fully_monotonic = inner.is_fully_monotonic
        self.has_diminishing_returns = inner.has_diminishing_returns
        self.context_free = inner.context_free

    def new_context(self) -> ExecutionContext:
        context = self.inner.new_context()
        for plan in self.executed:
            context.record(plan)
        return context

    def evaluate(self, plan: PlanLike, context: ExecutionContext) -> float:
        return self.inner.evaluate(plan, context)

    def evaluate_slots(self, slots: Slots, context: ExecutionContext) -> Interval:
        return self.inner.evaluate_slots(slots, context)

    def independent(self, first: PlanLike, second: PlanLike) -> bool:
        return self.inner.independent(first, second)

    def has_independent_witness(
        self, slots: Slots, executed: Sequence[PlanLike]
    ) -> bool:
        return self.inner.has_independent_witness(slots, executed)

    def all_members_independent(self, slots: Slots, plan: PlanLike) -> bool:
        return self.inner.all_members_independent(slots, plan)

    def source_preference_key(self, bucket: int, source) -> float:
        return self.inner.source_preference_key(bucket, source)

    def __repr__(self) -> str:
        return f"<_ReplayMeasure {self.name!r} executed={len(self.executed)}>"


def _space_slots(space: PlanSpace) -> Slots:
    """A plan space as abstract-plan slots (bucket member tuples)."""
    return tuple(bucket.sources for bucket in space.buckets)


def _split_out(
    spaces: list[PlanSpace], plan: QueryPlan
) -> list[PlanSpace]:
    """*spaces* with *plan* removed from the (one) space containing it.

    Spaces are pairwise disjoint (the ``order_spaces`` precondition),
    so at most one contains the plan; it is replaced by its
    ``split_off`` residue.  A plan in none of the spaces — possible
    when an inner orderer emits from a space the wrapper is not
    tracking — leaves the list unchanged.
    """
    result: list[PlanSpace] = []
    found = False
    for space in spaces:
        if not found and space.contains(plan):
            result.extend(space.split_off(plan))
            found = True
        else:
            result.append(space)
    return result


class AdaptiveOrderer(PlanOrderer):
    """Wrap an inner orderer; re-sort the residual space on health shifts.

    Parameters
    ----------
    utility:
        The live measure plans are (re-)scored with.  For the feedback
        loop to observe anything this should be a
        :class:`~repro.resilience.measure.HealthAwareMeasure` over the
        live tracker; with a static measure the wrapper still works but
        every re-check scores identically.
    inner_factory:
        Builds the wrapped orderer from a measure (any entry of the
        service's ``ORDERER_TABLE``, or a lambda).  Called once up
        front — applicability errors (e.g. Greedy over a
        non-monotonic measure) surface at construction, exactly as
        they would without the wrapper — and once per restart.
    epoch:
        The :class:`~repro.resilience.health.HealthEpoch` to watch
        (``ResilienceManager.epoch``).  ``None`` disables re-ordering
        entirely: the wrapper becomes a transparent pass-through.
    """

    name = "adaptive"

    def __init__(
        self,
        utility: UtilityMeasure,
        *,
        inner_factory: Callable[[UtilityMeasure], PlanOrderer],
        epoch=None,
        cache: bool = False,
        registry: Optional[MetricRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        super().__init__(utility, cache=cache, registry=registry, tracer=tracer)
        self.inner_factory = inner_factory
        self.epoch = epoch
        #: Optional BoundJournal; set via :meth:`bind_journal` by the
        #: mediator/session so ``plan.reordered`` events carry the
        #: request correlation id.
        self.journal = None
        # Probe construction: surface NotApplicableError now, not at
        # first iteration, mirroring direct inner-orderer construction.
        self._make_inner(())
        counter = self.registry.counter
        self._reorders = counter("ordering.adaptive.reorders")
        self._epoch_checks = counter("ordering.adaptive.epoch_checks")
        self._suppressed = counter("ordering.adaptive.suppressed_resorts")
        self._head_churn = counter("ordering.adaptive.head_churn")

    # -- wiring ------------------------------------------------------------------

    def bind_journal(self, journal) -> None:
        """Attach a (bound) journal for ``plan.reordered`` events."""
        self.journal = journal

    @property
    def reorders(self) -> int:
        return int(self._reorders.value)

    @property
    def suppressed_resorts(self) -> int:
        return int(self._suppressed.value)

    def _make_inner(self, executed: Sequence[QueryPlan]) -> PlanOrderer:
        inner = self.inner_factory(_ReplayMeasure(self.utility, executed))
        # One accounting stream across restarts: the inner's
        # evaluations and the wrapper's own re-check evaluations land
        # in the same OrderingStats, as consumers of ``stats`` expect.
        inner.stats = self.stats
        if self.tracer.enabled:
            inner.tracer = self.tracer
        return inner

    def _epoch_value(self) -> int:
        return self.epoch.value if self.epoch is not None else 0

    # -- the trigger test --------------------------------------------------------

    def _ranking_shifted(
        self,
        head: OrderedPlan,
        remaining: list[PlanSpace],
        executed: list[QueryPlan],
    ) -> tuple[bool, float, float]:
        """(shifted?, re-scored head utility, residual frontier hi).

        O(frontier): one concrete evaluation for the head plus one
        interval evaluation per residual subspace (at most ``m`` more
        than the spaces tracked, from splitting the head out).
        """
        context = self.utility.new_context()
        for plan in executed:
            context.record(plan)
        head_value = self._evaluate_plan(head.plan, context)
        rest = _split_out(remaining, head.plan)
        if not rest:
            return False, head_value, head_value
        intervals = [
            self._evaluate_slots(_space_slots(space), context)
            for space in rest
        ]
        frontier_hi = max(interval.hi for interval in intervals)
        shifted = not head_certainly_best(
            Interval.point(head_value), intervals
        )
        return shifted, head_value, frontier_hi

    # -- ordering ----------------------------------------------------------------

    def order(
        self,
        space: PlanSpace,
        k: int,
        on_emit: Optional[EmitCallback] = None,
    ) -> Iterator[OrderedPlan]:
        return self.order_spaces([space], k, on_emit)

    def order_spaces(
        self,
        spaces: "list[PlanSpace] | tuple[PlanSpace, ...]",
        k: int,
        on_emit: Optional[EmitCallback] = None,
    ) -> Iterator[OrderedPlan]:
        self._check_k(k)
        # Unpacking (not list()) keeps COD002 honest: the spaces handed
        # in are copied for residual bookkeeping, never the plans.
        remaining = [*spaces]
        executed: list[QueryPlan] = []
        #: Soundness answers for the inner orderer's ``on_emit``,
        #: recorded when the outer consumer resumes this generator —
        #: the same decide-before-resumption hand-off the pipelined
        #: session uses toward us.
        pending: dict[tuple[str, ...], bool] = {}

        def inner_on_emit(plan: QueryPlan) -> bool:
            return pending.pop(plan.key)

        emitted = 0
        seen_epoch = self._epoch_value()
        inner = self._make_inner(executed).order_spaces(
            remaining, k, inner_on_emit
        )
        try:
            while emitted < k:
                entry = next(inner, None)
                if entry is None:
                    break
                if self.epoch is not None:
                    self._epoch_checks.inc()
                    current = self._epoch_value()
                    if current != seen_epoch:
                        # Re-score under the epoch we are about to act
                        # on; a bump racing in *during* the check is
                        # caught at the next plan.
                        seen_epoch = current
                        shifted, head_value, frontier_hi = (
                            self._ranking_shifted(entry, remaining, executed)
                        )
                        if shifted:
                            self._reorders.inc()
                            journal = self.journal
                            if journal is not None and journal.enabled:
                                journal.emit(
                                    "plan.reordered",
                                    rank=emitted + 1,
                                    epoch=current,
                                    old_head=list(entry.plan.key),
                                    head_utility=head_value,
                                    frontier_hi=frontier_hi,
                                )
                            old_head = entry.plan.key
                            inner.close()
                            inner = self._make_inner(executed).order_spaces(
                                remaining, k - emitted, inner_on_emit
                            )
                            entry = next(inner, None)
                            if entry is None:
                                break
                            if entry.plan.key != old_head:
                                self._head_churn.inc()
                        else:
                            self._suppressed.inc()
                emitted += 1
                plan = entry.plan
                yield OrderedPlan(plan, entry.utility, emitted)
                # Resumed: the consumer has decided soundness.  Record
                # the answer for the inner orderer (asked on its next
                # resumption) and fold the plan out of the residual
                # space either way — emitted is emitted.
                sound = True if on_emit is None else on_emit(plan)
                pending[plan.key] = sound
                if sound:
                    executed.append(plan)
                remaining = _split_out(remaining, plan)
        finally:
            inner.close()

"""Streamer: abstraction with recycled dominance relations (Figure 5).

Streamer is applicable when *utility-diminishing returns* holds.  It
abstracts the sources once, then maintains a dominance graph across
output iterations, revalidating links via plan independence instead of
rebuilding the abstract plan space as iDrips does.

The loop follows Figure 5 of the paper:

1. Put the fully abstract top plan into the graph with unknown utility.
2. Repeat until ``k`` plans have been output:

   a. (re)compute the utility interval of every nondominated plan whose
      interval is unknown;
   b. create domination links ``b -> c`` (``lo_b >= hi_c``) among
      nondominated plans, each with an empty removed-plan set ``E``;
   c. if the most promising nondominated plan is abstract, refine it
      and go to (a);
   d. otherwise output that (concrete) plan ``d``, remove it, then for
      every link ``q -> q'`` either add ``d`` to ``E(q, q')`` (when a
      concrete witness in ``q`` independent of ``E union {d}`` exists —
      the link is *recycled*) or drop the link, and finally invalidate
      the cached utility of every plan not independent of ``d``.

Implementation notes beyond Figure 5 (also summarized in DESIGN.md §3):

* **Champion-only links.** Whenever any plan dominates ``c``, so does
  the plan with the maximal interval lower bound (the *champion*), so
  step (b) creates links from the champion only; the resulting
  nondominated set is the same as with the all-pairs rule.  Mutual
  domination can only occur between equal point intervals and is
  resolved by the plans' deterministic keys, so links form a DAG.
* **Heap-ordered processing.** Nondominated plans are kept in two lazy
  priority queues: a max-heap by interval upper bound selects the plan
  to refine or output, and a min-heap by upper bound yields the plans
  the champion newly dominates.  Entries carry a per-node version and
  are skipped when stale.
* **Early output.** A concrete plan whose upper bound tops the heap
  already beats every remaining plan (dominated plans are bounded by
  their dominators' witnesses), so it is output even if abstract
  nondominated plans linger with smaller upper bounds; Figure 5 would
  first refine those to exhaustion.  This changes only *when* work
  happens, never the emitted ordering.
* **Refinement drops the parent's links.** Every child's interval is
  contained in its parent's, so step (b) re-creates the dominations
  from fresh data.  A cached (non-None) interval is always current —
  every recorded execution invalidates all possibly-affected intervals
  — so link creation never uses stale bounds.
"""

from __future__ import annotations

import heapq
from typing import Iterator, Optional

from repro.errors import NotApplicableError, OrderingError
from repro.ordering.abstraction import (
    AbstractionHeuristic,
    OutputCountHeuristic,
    top_plan,
)
from repro.ordering.base import EmitCallback, OrderedPlan, PlanOrderer
from repro.ordering.dominance import DominanceGraph, Node, NodeKey
from repro.reformulation.plans import PlanSpace, QueryPlan
from repro.utility.base import ExecutionContext, UtilityMeasure
from repro.utility.intervals import Interval

#: Lazy heap entry: (sort value, node key, node version at push time).
HeapEntry = tuple[float, NodeKey, int]


class StreamerOrderer(PlanOrderer):
    """The paper's Streamer algorithm."""

    name = "Streamer"

    def __init__(
        self,
        utility: UtilityMeasure,
        heuristic: Optional[AbstractionHeuristic] = None,
        **instrumentation: object,
    ) -> None:
        if not utility.has_diminishing_returns:
            raise NotApplicableError(
                f"Streamer requires utility-diminishing returns; "
                f"{utility.name!r} does not provide it"
            )
        super().__init__(utility, **instrumentation)
        self.heuristic = heuristic or OutputCountHeuristic()

    # -- main loop ---------------------------------------------------------------

    def order(
        self,
        space: PlanSpace,
        k: int,
        on_emit: Optional[EmitCallback] = None,
    ) -> Iterator[OrderedPlan]:
        return self.order_spaces([space], k, on_emit)

    def order_spaces(
        self,
        spaces: "list[PlanSpace] | tuple[PlanSpace, ...]",
        k: int,
        on_emit: Optional[EmitCallback] = None,
    ) -> Iterator[OrderedPlan]:
        self._check_k(k)
        context = self.utility.new_context()
        graph = DominanceGraph(registry=self.registry)
        refine_heap: list[HeapEntry] = []  # max-heap by hi (negated)
        link_heap: list[HeapEntry] = []  # min-heap by hi
        pending: set[NodeKey] = set()
        champion: Optional[Node] = None

        def push(node: Node) -> None:
            heapq.heappush(
                refine_heap, (-node.interval.hi, node.key, node.version)
            )
            heapq.heappush(link_heap, (node.interval.hi, node.key, node.version))

        def current(key: NodeKey, version: int) -> Optional[Node]:
            node = graph.get(key)
            if node is None or node.version != version or node.interval is None:
                return None
            return node

        def on_freed(freed: list[Node]) -> None:
            for node in freed:
                if node.interval is None:
                    pending.add(node.key)
                else:
                    push(node)

        for space_id, space in enumerate(spaces):
            root = graph.add_plan(
                top_plan(space.buckets, self.heuristic, space_id)
            )
            pending.add(root.key)

        emitted = 0
        while emitted < k and len(graph) > 0:
            # Step 2.a: evaluate nondominated plans with unknown utility.
            fresh: list[Node] = []
            for key in pending:
                node = graph.get(key)
                if node is None or graph.is_dominated(node):
                    continue
                if node.interval is None:
                    self._evaluate(node, context)
                    node.version += 1
                push(node)
                fresh.append(node)
            pending.clear()

            champion = self._update_champion(graph, champion, fresh)

            # Step 2.b: link the champion to every plan it dominates.
            if champion is not None:
                lo = champion.interval.lo
                while link_heap and link_heap[0][0] <= lo:
                    _hi, key, version = heapq.heappop(link_heap)
                    node = current(key, version)
                    if node is None or node is champion or graph.is_dominated(node):
                        continue
                    mutual = node.interval.lo >= champion.interval.hi
                    if mutual and not champion.key < node.key:
                        continue  # exact tie resolved in the node's favor
                    graph.add_link(champion, node)
                    self.stats.links_created += 1

            # Steps 2.c / 2.d: take the most promising nondominated plan.
            top = None
            while refine_heap:
                _neg_hi, key, version = heapq.heappop(refine_heap)
                node = current(key, version)
                if node is not None and not graph.is_dominated(node):
                    top = node
                    break
            if top is None:
                if pending:
                    continue
                nil_nondominated = [
                    n for n in graph.nondominated() if n.interval is None
                ]
                if nil_nondominated:
                    pending.update(n.key for n in nil_nondominated)
                    continue
                raise OrderingError("dominance graph has no processable plan")

            if not top.is_concrete:
                # Step 2.c: refine.
                if champion is top:
                    champion = None
                on_freed(graph.remove_node(top))
                for child in top.plan.refine():
                    pending.add(graph.add_plan(child).key)
                self.stats.refinements += 1
                continue

            # Step 2.d: output.
            plan = top.plan.concrete_plan()
            emitted += 1
            self.stats.snapshot_first_plan()
            yield OrderedPlan(plan, top.interval.lo, emitted)

            champion = None
            on_freed(graph.remove_node(top))
            if on_emit is None or on_emit(plan):
                context.record(plan)
                freed = self._revalidate_links(graph, plan)
                self._invalidate_intervals(graph, plan, pending)
                # Nodes freed by link invalidation need fresh heap
                # entries (their old ones were consumed while they were
                # dominated); run after interval invalidation so stale
                # intervals land in `pending` instead.
                on_freed(freed)

    # -- helpers -----------------------------------------------------------------

    def _evaluate(self, node: Node, context: ExecutionContext) -> None:
        if node.is_concrete:
            value = self._evaluate_plan(node.plan.concrete_plan(), context)
            node.interval = Interval.point(value)
        else:
            node.interval = self._evaluate_slots(
                node.plan.slots_members(), context
            )

    def _update_champion(
        self,
        graph: DominanceGraph,
        champion: Optional[Node],
        fresh: list[Node],
    ) -> Optional[Node]:
        """Keep the champion the nondominated plan with maximal lo."""
        if champion is not None:
            alive = graph.get(champion.key)
            if (
                alive is not champion
                or graph.is_dominated(champion)
                or champion.interval is None
            ):
                champion = None
        if champion is None:
            scored = [n for n in graph.nondominated() if n.interval is not None]
            if not scored:
                return None
            return max(scored, key=lambda n: (n.interval.lo, n.key))
        for node in fresh:
            if (node.interval.lo, node.key) > (
                champion.interval.lo,
                champion.key,
            ):
                champion = node
        return champion

    def _revalidate_links(
        self, graph: DominanceGraph, removed: QueryPlan
    ) -> list[Node]:
        """Step 2.d: recycle links whose witness survives, drop the rest.

        Returns the nodes that became nondominated.
        """
        freed: list[Node] = []
        for source, target, e_set in graph.links():
            slots = source.plan.slots_members()
            if self.utility.all_members_independent(slots, removed):
                # Fast path: *removed* cannot touch any member of the
                # dominating plan, so any witness independent of E is
                # also independent of E + {removed}; E need not grow.
                self.stats.links_recycled += 1
                continue
            if self.utility.has_independent_witness(slots, e_set + [removed]):
                e_set.append(removed)
                self.stats.links_recycled += 1
            else:
                graph.remove_link(source.key, target.key)
                self.stats.links_invalidated += 1
                if not graph.is_dominated(target):
                    freed.append(target)
        return freed

    def _invalidate_intervals(
        self,
        graph: DominanceGraph,
        removed: QueryPlan,
        pending: set[NodeKey],
    ) -> None:
        """Step 2.d: nil the utility of plans not independent of *removed*."""
        for node in graph.nodes():
            if node.interval is None:
                continue
            if not self.utility.all_members_independent(
                node.plan.slots_members(), removed
            ):
                node.interval = None
                node.version += 1
                if not graph.is_dominated(node):
                    pending.add(node.key)
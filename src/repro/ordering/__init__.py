"""Plan-ordering algorithms (the paper's contribution).

* :class:`~repro.ordering.greedy.GreedyOrderer` -- Section 4, for
  fully monotonic utility measures.
* :class:`~repro.ordering.drips.DripsPlanner` -- Section 5.1, finds the
  single best plan by abstraction (Haddawy, Doan & Goodwin).
* :class:`~repro.ordering.idrips.IDripsOrderer` -- Section 5.2, iterates
  Drips with plan-space splitting and per-iteration re-abstraction.
* :class:`~repro.ordering.streamer.StreamerOrderer` -- Section 5.2 /
  Figure 5, abstracts once and recycles dominance relations.
* :class:`~repro.ordering.bruteforce.PIOrderer` -- Section 6's baseline:
  exact brute force that reuses plan-independence information.
* :class:`~repro.ordering.bruteforce.ExhaustiveOrderer` -- naive brute
  force that recomputes everything each iteration (ablation).
* :class:`~repro.ordering.anyk.AnyKOrderer` -- any-k ranked
  enumeration by Lawler successors over the bucket lattice; emits the
  first plan without materializing or abstracting the product space.
* :class:`~repro.ordering.adaptive.AdaptiveOrderer` -- wraps any of
  the above and re-sorts the residual plan space mid-stream when the
  resilience layer's health epoch shows the ranking may have shifted.
"""

from repro.ordering.adaptive import AdaptiveOrderer
from repro.ordering.anyk import AnyKOrderer

from repro.ordering.abstraction import (
    AbstractPlan,
    AbstractSource,
    AbstractionHeuristic,
    ExtensionSimilarityHeuristic,
    OutputCountHeuristic,
    RandomHeuristic,
)
from repro.ordering.base import OrderedPlan, OrderingStats, PlanOrderer
from repro.ordering.bruteforce import ExhaustiveOrderer, PIOrderer
from repro.ordering.drips import DripsPlanner, drips_search
from repro.ordering.greedy import GreedyOrderer
from repro.ordering.idrips import IDripsOrderer
from repro.ordering.streamer import StreamerOrderer

__all__ = [
    "AbstractPlan",
    "AdaptiveOrderer",
    "AnyKOrderer",
    "AbstractSource",
    "AbstractionHeuristic",
    "DripsPlanner",
    "ExhaustiveOrderer",
    "ExtensionSimilarityHeuristic",
    "GreedyOrderer",
    "IDripsOrderer",
    "OrderedPlan",
    "OrderingStats",
    "OutputCountHeuristic",
    "PIOrderer",
    "PlanOrderer",
    "RandomHeuristic",
    "StreamerOrderer",
    "drips_search",
]

"""repro: a reproduction of "Efficiently Ordering Query Plans for Data
Integration" (AnHai Doan & Alon Halevy, ICDE 2002).

The library contains a complete local-as-view data-integration stack —
conjunctive queries, the bucket / MiniCon / inverse-rules
reformulation algorithms, plan soundness, plan execution — and, at its
core, the paper's plan-ordering algorithms: Greedy, iDrips and
Streamer, evaluated against the PI brute-force baseline under the
paper's four utility measures.

Quickstart::

    from repro import (
        movie_domain, Mediator, LinearCost, GreedyOrderer,
    )

    domain = movie_domain()
    mediator = Mediator(domain.catalog, domain.source_facts)
    for batch in mediator.answer(domain.query, LinearCost()):
        print(batch.rank, batch.plan, sorted(batch.new_answers))
"""

from repro.datalog import (
    Atom,
    ConjunctiveQuery,
    Constant,
    Variable,
    is_contained,
    parse_atom,
    parse_query,
)
from repro.errors import (
    CatalogError,
    DatalogError,
    ExecutionError,
    NotApplicableError,
    OrderingError,
    ParseError,
    ReformulationError,
    ReproError,
    UtilityError,
)
from repro.execution import AnswerBatch, Mediator, execute_plan
from repro.observability import (
    CachingUtilityMeasure,
    MetricRegistry,
    Tracer,
)
from repro.ordering import (
    DripsPlanner,
    ExhaustiveOrderer,
    ExtensionSimilarityHeuristic,
    GreedyOrderer,
    IDripsOrderer,
    OrderedPlan,
    OrderingStats,
    OutputCountHeuristic,
    PIOrderer,
    PlanOrderer,
    RandomHeuristic,
    StreamerOrderer,
)
from repro.reformulation import (
    Bucket,
    PlanSpace,
    QueryPlan,
    answer_with_inverse_rules,
    build_buckets,
    is_sound,
    minicon_plan_queries,
    plan_query,
)
from repro.service import (
    CancellationToken,
    PipelinedSession,
    QueryRequest,
    QueryService,
    RequestPolicy,
    RetryPolicy,
    ServiceConfig,
)
from repro.sources import Catalog, OverlapModel, SourceDescription, SourceStats
from repro.utility import (
    BindJoinCost,
    CoverageUtility,
    Interval,
    LinearCost,
    MonetaryCostPerTuple,
    UtilityMeasure,
)
from repro.workloads import (
    SyntheticDomain,
    SyntheticParams,
    camera_domain,
    generate_domain,
    movie_domain,
)

__version__ = "1.0.0"

__all__ = [
    "AnswerBatch",
    "Atom",
    "BindJoinCost",
    "Bucket",
    "CachingUtilityMeasure",
    "CancellationToken",
    "Catalog",
    "CatalogError",
    "ConjunctiveQuery",
    "Constant",
    "CoverageUtility",
    "DatalogError",
    "DripsPlanner",
    "ExecutionError",
    "ExhaustiveOrderer",
    "ExtensionSimilarityHeuristic",
    "GreedyOrderer",
    "IDripsOrderer",
    "Interval",
    "LinearCost",
    "Mediator",
    "MetricRegistry",
    "MonetaryCostPerTuple",
    "NotApplicableError",
    "OrderedPlan",
    "OrderingError",
    "OrderingStats",
    "OutputCountHeuristic",
    "PIOrderer",
    "ParseError",
    "PipelinedSession",
    "PlanOrderer",
    "PlanSpace",
    "QueryPlan",
    "QueryRequest",
    "QueryService",
    "RandomHeuristic",
    "ReformulationError",
    "ReproError",
    "RequestPolicy",
    "RetryPolicy",
    "ServiceConfig",
    "SourceDescription",
    "SourceStats",
    "StreamerOrderer",
    "Tracer",
    "SyntheticDomain",
    "SyntheticParams",
    "UtilityError",
    "UtilityMeasure",
    "Variable",
    "answer_with_inverse_rules",
    "build_buckets",
    "camera_domain",
    "execute_plan",
    "generate_domain",
    "is_contained",
    "is_sound",
    "minicon_plan_queries",
    "movie_domain",
    "parse_atom",
    "parse_query",
    "plan_query",
]

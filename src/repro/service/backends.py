"""Execution backends for the service layer.

The sequential mediator always evaluates plans in-process over the
in-memory source instances.  The service layer routes execution
through a small backend interface instead, for two reasons:

* executor *workers* run concurrently, so the backend contract is
  explicit about what they receive — an executable source-level query
  and a **read-only** database view;
* real sources flake.  :class:`FlakyBackend` injects transient
  failures mirroring the virtual-clock simulator's per-source failure
  model, which is what gives the retry-with-backoff policy something
  real to do in demos and tests.

Failure injection is deterministic: whether attempt ``n`` on plan
query ``q`` fails depends only on ``(seed, signature(q), n)``, never
on thread scheduling, so concurrent service runs are replayable.
"""

from __future__ import annotations

import random
import threading
from abc import ABC, abstractmethod
from typing import Mapping, Optional

from repro.errors import TransientExecutionError
from repro.datalog.query import ConjunctiveQuery
from repro.execution.engine import evaluate_conjunctive_query

__all__ = [
    "ExecutionBackend",
    "InMemoryBackend",
    "FlakyBackend",
    "deterministic_draw",
]

#: Read-only database view handed to backends.
Database = Mapping[str, set[tuple[object, ...]]]


def deterministic_draw(seed: int, signature: str, attempt: int) -> float:
    """A uniform [0, 1) draw that depends only on its arguments.

    Shared by every failure-injecting backend (:class:`FlakyBackend`,
    :class:`~repro.resilience.chaos.ChaosBackend`) so that whether
    attempt ``n`` on a given signature fails is a pure function of the
    configuration — never of thread scheduling — and chaos runs are
    replayable.
    """
    return random.Random(f"{seed}:{signature}:{attempt}").random()


class ExecutionBackend(ABC):
    """Evaluates one executable plan query over the source instances."""

    @abstractmethod
    def execute(
        self, executable: ConjunctiveQuery, database: Database
    ) -> frozenset[tuple[object, ...]]:
        """All answers of *executable*; may raise
        :class:`~repro.errors.TransientExecutionError` for retryable
        failures."""


class InMemoryBackend(ExecutionBackend):
    """The default: direct evaluation, never fails."""

    def execute(
        self, executable: ConjunctiveQuery, database: Database
    ) -> frozenset[tuple[object, ...]]:
        return frozenset(evaluate_conjunctive_query(executable, database))

    def __repr__(self) -> str:
        return "<InMemoryBackend>"


class FlakyBackend(ExecutionBackend):
    """Failure-injecting wrapper around another backend.

    Each execution attempt independently fails with ``failure_prob``,
    like one source access in
    :class:`~repro.execution.simulator.ExecutionSimulator`.  Attempts
    are numbered per plan query, and the failure draw for attempt ``n``
    is seeded from ``(seed, signature, n)``, so a retrying caller sees
    the same failure pattern on every run regardless of concurrency.
    """

    def __init__(
        self,
        inner: Optional[ExecutionBackend] = None,
        *,
        failure_prob: float = 0.3,
        seed: int = 0,
        fail_first: int = 0,
    ) -> None:
        if not 0.0 <= failure_prob <= 1.0:
            raise ValueError(f"failure_prob must be in [0, 1]: {failure_prob}")
        self.inner = inner if inner is not None else InMemoryBackend()
        self.failure_prob = failure_prob
        self.seed = seed
        #: The first ``fail_first`` attempts per query fail
        #: unconditionally — a deterministic handle for retry tests.
        self.fail_first = fail_first
        self._attempts: dict[str, int] = {}
        self._lock = threading.Lock()
        self.failures_injected = 0

    @staticmethod
    def _signature(executable: ConjunctiveQuery) -> str:
        return str(executable)

    def attempts_for(self, executable: ConjunctiveQuery) -> int:
        """How many attempts this backend has seen for *executable*."""
        with self._lock:
            return self._attempts.get(self._signature(executable), 0)

    def execute(
        self, executable: ConjunctiveQuery, database: Database
    ) -> frozenset[tuple[object, ...]]:
        signature = self._signature(executable)
        with self._lock:
            attempt = self._attempts.get(signature, 0) + 1
            self._attempts[signature] = attempt
        fails = False
        if attempt <= self.fail_first:
            fails = True
        elif self.failure_prob > 0.0:
            fails = deterministic_draw(self.seed, signature, attempt) < self.failure_prob
        if fails:
            with self._lock:
                self.failures_injected += 1
            raise TransientExecutionError(
                f"injected source failure (attempt {attempt}) for {signature}"
            )
        return self.inner.execute(executable, database)

    def __repr__(self) -> str:
        with self._lock:
            failures = self.failures_injected
        return (
            f"<FlakyBackend p={self.failure_prob} seed={self.seed} "
            f"failures={failures}>"
        )

"""The concurrent anytime query service.

This package turns the library into a servable system (the ROADMAP's
production direction):

* :mod:`repro.service.session` — :class:`PipelinedSession`: ordering,
  soundness, and execution overlapped across threads, emitting a
  batch stream identical to the sequential mediator's;
* :mod:`repro.service.policy` — per-request deadlines, plan/answer
  budgets, cooperative cancellation, and retry backoff;
* :mod:`repro.service.backends` — the execution backend interface,
  including deterministic failure injection for retry demos;
* :mod:`repro.service.server` — :class:`QueryService`: many
  concurrent requests over one shared catalog, statistics, and
  utility-measure cache, with admission control and backpressure;
* :mod:`repro.service.protocol` / :mod:`repro.service.frontend` — the
  JSON-lines TCP wire (``repro serve``);
* :mod:`repro.service.loadgen` — the load generator
  (``repro bench-serve``).

See ``docs/service.md`` for the architecture tour.
"""

from repro.service.backends import ExecutionBackend, FlakyBackend, InMemoryBackend
from repro.service.policy import (
    CancellationToken,
    Deadline,
    RequestPolicy,
    RetryPolicy,
)
from repro.service.server import (
    QueryRequest,
    QueryService,
    RequestResult,
    ServiceConfig,
)
from repro.service.session import PipelinedSession, SessionReport

__all__ = [
    "CancellationToken",
    "Deadline",
    "ExecutionBackend",
    "FlakyBackend",
    "InMemoryBackend",
    "PipelinedSession",
    "QueryRequest",
    "QueryService",
    "RequestPolicy",
    "RequestResult",
    "RetryPolicy",
    "ServiceConfig",
    "SessionReport",
]

"""A load generator for the query service: ``repro bench-serve``.

Replays a mix of random conjunctive queries over a served catalog
from N concurrent client connections and reports throughput plus
first-answer / last-answer latency percentiles — the two numbers the
paper's anytime argument is about (how fast do the *first* useful
answers arrive, and what does full drain cost).

Latencies are measured client-side on the wire: first-answer is the
time from sending the query record to the first ``batch`` record that
carries new answers; last-answer is the time to the ``summary``
record.  Everything is stdlib sockets, deterministic per seed.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ProtocolError, ReformulationError, ServiceError
from repro.datalog.terms import Atom, Variable
from repro.datalog.query import ConjunctiveQuery
from repro.reformulation.buckets import build_buckets
from repro.service import protocol
from repro.service.frontend import connect
from repro.sources.catalog import Catalog

__all__ = [
    "LatencySummary",
    "LoadReport",
    "build_query_mix",
    "percentile",
    "run_load",
]


def percentile(values: list[float], q: float) -> float:
    """The *q*-quantile (0..1) by linear interpolation; 0.0 if empty."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


@dataclass
class LatencySummary:
    """Latency percentiles (p50/p90/p95/p99) over one series (seconds)."""

    count: int = 0
    mean: float = 0.0
    p50: float = 0.0
    p90: float = 0.0
    p95: float = 0.0
    p99: float = 0.0
    max: float = 0.0

    @classmethod
    def of(cls, values: list[float]) -> "LatencySummary":
        if not values:
            return cls()
        return cls(
            count=len(values),
            mean=sum(values) / len(values),
            p50=percentile(values, 0.50),
            p90=percentile(values, 0.90),
            p95=percentile(values, 0.95),
            p99=percentile(values, 0.99),
            max=max(values),
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean_s": self.mean,
            "p50_s": self.p50,
            "p90_s": self.p90,
            "p95_s": self.p95,
            "p99_s": self.p99,
            "max_s": self.max,
        }


@dataclass
class LoadReport:
    """Aggregate outcome of one load run.

    The degradation section (``degradation_reported`` onward)
    aggregates the resilience fields every summary record carries: how
    many replies reported partial answers, how many plans were skipped
    behind open breakers or dropped after exhausted retries, which
    sources were ever skipped, and how many requests still produced
    answers despite skipping plans (``fallback_successes`` — the
    graceful-degradation success story).
    """

    sent: int = 0
    completed: int = 0
    errors: int = 0
    rejected: int = 0
    deadline_exceeded: int = 0
    answers: int = 0
    duration_s: float = 0.0
    first_answer: LatencySummary = field(default_factory=LatencySummary)
    last_answer: LatencySummary = field(default_factory=LatencySummary)
    degradation_reported: int = 0
    answers_partial: int = 0
    plans_skipped: int = 0
    plans_failed: int = 0
    fallback_successes: int = 0
    sources_skipped: set[str] = field(default_factory=set)
    #: Per-shard breakdown, present only when replies carry a ``shard``
    #: tag (i.e. the target is a cluster router, not a single worker).
    shard_requests: dict[int, int] = field(default_factory=dict)
    shard_latency: dict[int, LatencySummary] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def shard_imbalance(self) -> float:
        """Max/min per-shard request share; 1.0 is a perfect split.

        Only shards that served at least one request participate — a
        shard the hash ring never chose for this query mix says nothing
        about router fairness.  0.0 when the target was not a router.
        """
        if not self.shard_requests:
            return 0.0
        counts = list(self.shard_requests.values())
        return max(counts) / min(counts)

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly form (the CI chaos-smoke artifact)."""
        result: dict[str, object] = {
            "sent": self.sent,
            "completed": self.completed,
            "errors": self.errors,
            "rejected": self.rejected,
            "deadline_exceeded": self.deadline_exceeded,
            "answers": self.answers,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "first_answer": self.first_answer.as_dict(),
            "last_answer": self.last_answer.as_dict(),
            "degradation": {
                "reported": self.degradation_reported,
                "answers_partial": self.answers_partial,
                "plans_skipped": self.plans_skipped,
                "plans_failed": self.plans_failed,
                "fallback_successes": self.fallback_successes,
                "sources_skipped": sorted(self.sources_skipped),
            },
        }
        if self.shard_requests:
            result["shards"] = {
                str(shard): {
                    "requests": self.shard_requests[shard],
                    "last_answer": self.shard_latency[shard].as_dict(),
                }
                for shard in sorted(self.shard_requests)
            }
            result["shard_imbalance"] = self.shard_imbalance
        return result

    def format_table(self) -> str:
        lines = [
            f"{'requests sent':<24} {self.sent}",
            f"{'completed':<24} {self.completed}",
            f"{'errors':<24} {self.errors}",
            f"{'rejected (overload)':<24} {self.rejected}",
            f"{'deadline exceeded':<24} {self.deadline_exceeded}",
            f"{'answers received':<24} {self.answers}",
            f"{'duration [s]':<24} {self.duration_s:.3f}",
            f"{'throughput [req/s]':<24} {self.throughput_rps:.1f}",
        ]
        for label, summary in (
            ("first-answer", self.first_answer),
            ("last-answer", self.last_answer),
        ):
            lines.append(
                f"{label + ' latency [s]':<24} "
                f"p50={summary.p50:.4f} p90={summary.p90:.4f} "
                f"p95={summary.p95:.4f} p99={summary.p99:.4f} "
                f"max={summary.max:.4f}"
            )
        if self.answers_partial or self.plans_skipped or self.plans_failed:
            skipped = ",".join(sorted(self.sources_skipped)) or "-"
            lines.extend(
                [
                    f"{'partial replies':<24} {self.answers_partial}",
                    f"{'plans skipped':<24} {self.plans_skipped}",
                    f"{'plans failed':<24} {self.plans_failed}",
                    f"{'fallback successes':<24} {self.fallback_successes}",
                    f"{'sources skipped':<24} {skipped}",
                ]
            )
        if self.shard_requests:
            total = sum(self.shard_requests.values()) or 1
            for shard in sorted(self.shard_requests):
                count = self.shard_requests[shard]
                summary = self.shard_latency[shard]
                lines.append(
                    f"{f'shard {shard}':<24} "
                    f"requests={count} ({100.0 * count / total:.0f}%) "
                    f"p50={summary.p50:.4f} p90={summary.p90:.4f} "
                    f"p99={summary.p99:.4f}"
                )
            lines.append(
                f"{'shard imbalance':<24} {self.shard_imbalance:.2f}"
            )
        return "\n".join(lines)


def build_query_mix(
    catalog: Catalog,
    n_queries: int,
    seed: int = 0,
    max_subgoals: int = 2,
    include: Optional[ConjunctiveQuery] = None,
) -> list[str]:
    """Random conjunctive queries (as datalog text) over *catalog*.

    Only queries whose bucket plan space is non-empty make the mix —
    a load run should exercise ordering + execution, not reformulation
    dead ends.  Deterministic per seed.  ``include`` seeds the mix
    with a known-good query (e.g. the workload's canonical one).
    """
    rng = random.Random(seed)
    relations = catalog.schema
    if not relations:
        raise ServiceError("catalog has no relations to query")
    names = sorted(relations)
    variables = [Variable(f"X{i}") for i in range(8)]
    mix: list[str] = []
    if include is not None:
        mix.append(str(include))
    attempts = 0
    while len(mix) < n_queries and attempts < 200 * n_queries:
        attempts += 1
        n_atoms = rng.randint(1, max_subgoals)
        body = []
        for _ in range(n_atoms):
            name = rng.choice(names)
            arity = relations[name]
            body.append(
                Atom(
                    name,
                    tuple(
                        rng.choice(variables[: 2 * n_atoms])
                        for _ in range(arity)
                    ),
                )
            )
        body_vars = sorted(
            {v for atom in body for v in atom.variables()}, key=lambda v: v.name
        )
        if not body_vars:
            continue
        head_size = rng.randint(1, min(3, len(body_vars)))
        head = Atom("q", tuple(rng.sample(body_vars, head_size)))
        query = ConjunctiveQuery(head, tuple(body))
        try:
            space = build_buckets(query, catalog)
        except ReformulationError:
            continue
        if space.size < 1:
            continue
        mix.append(str(query))
    if len(mix) < n_queries:
        raise ServiceError(
            f"could only build {len(mix)}/{n_queries} plannable queries "
            f"for this catalog (seed {seed})"
        )
    return mix[:n_queries]


class _ClientWorker(threading.Thread):
    """One connection replaying queries taken from a shared cursor."""

    def __init__(
        self,
        host: str,
        port: int,
        queries: list[str],
        cursor: "_Cursor",
        *,
        measure: Optional[str],
        orderer: Optional[str],
        deadline_s: Optional[float],
        first_k_answers: Optional[int],
        timeout_s: float,
    ) -> None:
        super().__init__(daemon=True)
        self.host = host
        self.port = port
        self.queries = queries
        self.cursor = cursor
        self.measure = measure
        self.orderer = orderer
        self.deadline_s = deadline_s
        self.first_k_answers = first_k_answers
        self.timeout_s = timeout_s
        self.first_latencies: list[float] = []
        self.last_latencies: list[float] = []
        self.sent = 0
        self.completed = 0
        self.errors = 0
        self.rejected = 0
        self.deadline_exceeded = 0
        self.answers = 0
        self.degradation_reported = 0
        self.answers_partial = 0
        self.plans_skipped = 0
        self.plans_failed = 0
        self.fallback_successes = 0
        self.sources_skipped: set[str] = set()
        self.shard_latencies: dict[int, list[float]] = {}

    def run(self) -> None:
        # A worker thread must never die with a traceback: every
        # transport mishap — refused connect, socket timeout, partial
        # frame, server hangup mid-stream — is *one request's* failure,
        # counted in the report, after which the worker reconnects and
        # keeps draining the cursor.
        sock = None
        stream = None

        def drop_connection() -> None:
            nonlocal sock, stream
            for closeable in (stream, sock):
                if closeable is not None:
                    try:
                        closeable.close()
                    except OSError:
                        pass
            sock = None
            stream = None

        try:
            while True:
                index = self.cursor.take()
                if index is None:
                    return
                if stream is None:
                    try:
                        sock = connect(
                            self.host, self.port, timeout=self.timeout_s
                        )
                        stream = sock.makefile("rwb")
                    except OSError:
                        drop_connection()
                        self.sent += 1
                        self.errors += 1
                        continue
                try:
                    alive = self._one_request(stream, index)
                except (OSError, ValueError, ProtocolError):
                    # OSError covers timeouts and resets; ValueError is
                    # what a makefile raises once its socket is gone;
                    # ProtocolError is a half-written frame.
                    self.errors += 1
                    alive = False
                if not alive:
                    drop_connection()
        finally:
            drop_connection()

    def _one_request(self, stream, index: int) -> bool:
        """Run one request; False means the connection is unusable."""
        text = self.queries[index % len(self.queries)]
        record = protocol.request_record(
            text,
            request_id=f"load-{index}",
            measure=self.measure,
            orderer=self.orderer,
            deadline_s=self.deadline_s,
            first_k_answers=self.first_k_answers,
        )
        self.sent += 1
        started = time.perf_counter()
        stream.write(protocol.encode_line(record))
        stream.flush()
        first_answer_at: Optional[float] = None
        answers = 0
        while True:
            line = stream.readline()
            if not line:
                # Server closed the connection mid-request.
                self.errors += 1
                return False
            reply = protocol.decode_line(line)
            kind = reply.get("type")
            if kind == "batch":
                answers += len(reply.get("new_answers", ()))
                if first_answer_at is None and reply.get("new_answers"):
                    first_answer_at = time.perf_counter() - started
            elif kind == "summary":
                elapsed = time.perf_counter() - started
                self.completed += 1
                self.answers += answers
                if reply.get("deadline_exceeded"):
                    self.deadline_exceeded += 1
                if first_answer_at is not None:
                    self.first_latencies.append(first_answer_at)
                self.last_latencies.append(elapsed)
                shard = reply.get("shard")
                if isinstance(shard, int):
                    self.shard_latencies.setdefault(shard, []).append(elapsed)
                self._record_degradation(reply, answers)
                return True
            elif kind == "error":
                if reply.get("code") == "overloaded":
                    self.rejected += 1
                else:
                    self.errors += 1
                return True

    def _record_degradation(self, reply: dict, answers: int) -> None:
        if "answers_partial" not in reply:
            return
        self.degradation_reported += 1
        skipped = int(reply.get("plans_skipped") or 0)
        self.plans_skipped += skipped
        self.plans_failed += int(reply.get("plans_failed") or 0)
        if reply.get("answers_partial"):
            self.answers_partial += 1
        for source in reply.get("sources_skipped") or ():
            self.sources_skipped.add(str(source))
        if reply.get("status") == "ok" and skipped and answers:
            # Degraded yet useful: a breaker blocked at least one plan
            # and a fallback plan still delivered answers.
            self.fallback_successes += 1


class _Cursor:
    """Hands out request indices until the budget is spent."""

    def __init__(self, total: int) -> None:
        self._lock = threading.Lock()
        self._next = 0
        self._total = total

    def take(self) -> Optional[int]:
        with self._lock:
            if self._next >= self._total:
                return None
            index = self._next
            self._next += 1
            return index


def run_load(
    host: str,
    port: int,
    queries: list[str],
    *,
    requests: int = 50,
    concurrency: int = 4,
    measure: Optional[str] = None,
    orderer: Optional[str] = None,
    deadline_s: Optional[float] = None,
    first_k_answers: Optional[int] = None,
    timeout_s: float = 30.0,
) -> LoadReport:
    """Replay *queries* round-robin from *concurrency* connections."""
    if not queries:
        raise ServiceError("empty query mix")
    cursor = _Cursor(requests)
    workers = [
        _ClientWorker(
            host,
            port,
            queries,
            cursor,
            measure=measure,
            orderer=orderer,
            deadline_s=deadline_s,
            first_k_answers=first_k_answers,
            timeout_s=timeout_s,
        )
        for _ in range(concurrency)
    ]
    started = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    duration = time.perf_counter() - started

    report = LoadReport(duration_s=duration)
    first: list[float] = []
    last: list[float] = []
    by_shard: dict[int, list[float]] = {}
    for worker in workers:
        report.sent += worker.sent
        report.completed += worker.completed
        report.errors += worker.errors
        report.rejected += worker.rejected
        report.deadline_exceeded += worker.deadline_exceeded
        report.answers += worker.answers
        report.degradation_reported += worker.degradation_reported
        report.answers_partial += worker.answers_partial
        report.plans_skipped += worker.plans_skipped
        report.plans_failed += worker.plans_failed
        report.fallback_successes += worker.fallback_successes
        report.sources_skipped.update(worker.sources_skipped)
        first.extend(worker.first_latencies)
        last.extend(worker.last_latencies)
        for shard, values in worker.shard_latencies.items():
            by_shard.setdefault(shard, []).extend(values)
    report.first_answer = LatencySummary.of(first)
    report.last_answer = LatencySummary.of(last)
    for shard, values in sorted(by_shard.items()):
        report.shard_requests[shard] = len(values)
        report.shard_latency[shard] = LatencySummary.of(values)
    return report

"""A tiny stdlib HTTP endpoint exposing Prometheus metrics.

``start_metrics_server`` binds a threading HTTP server with two
routes:

* ``GET /metrics`` — calls the supplied ``text_fn`` (usually
  :meth:`QueryService.prometheus_text`) and returns its output with
  the Prometheus text-format content type;
* ``GET /healthz`` — a constant ``ok`` body for liveness probes.

Everything else is 404.  The server runs on a daemon thread so a CLI
``repro serve --metrics-port`` process can be killed without
ceremony; proper shutdown is ``server.shutdown(); server.server_close()``.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

__all__ = ["MetricsHTTPServer", "start_metrics_server"]

#: The content type scrapers expect for text exposition format 0.0.4.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _MetricsHandler(BaseHTTPRequestHandler):
    server: "MetricsHTTPServer"

    # BaseHTTPRequestHandler logs every request to stderr by default;
    # a scrape every few seconds would drown the CLI's real output.
    def log_message(self, format: str, *args: object) -> None:
        pass

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            try:
                body = self.server.text_fn().encode("utf-8")
            except Exception as exc:  # lint: allow[COD004] surface as 500
                self._respond(500, f"metrics render failed: {exc}\n".encode())
                return
            self._respond(200, body, content_type=CONTENT_TYPE)
        elif path == "/healthz":
            self._respond(200, b"ok\n")
        else:
            self._respond(404, b"not found\n")

    def _respond(
        self, status: int, body: bytes, content_type: str = "text/plain"
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # scraper went away mid-response


class MetricsHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server bound to a metrics-text callable."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self, address: tuple[str, int], text_fn: Callable[[], str]
    ) -> None:
        super().__init__(address, _MetricsHandler)
        self.text_fn = text_fn

    @property
    def port(self) -> int:
        return self.server_address[1]


def start_metrics_server(
    text_fn: Callable[[], str],
    host: str = "127.0.0.1",
    port: int = 0,
) -> tuple[MetricsHTTPServer, threading.Thread]:
    """Serve ``/metrics`` in a background thread; ``port=0`` picks one."""
    server = MetricsHTTPServer((host, port), text_fn)
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.05},
        name="repro-metricsd",
        daemon=True,
    )
    thread.start()
    return server, thread

"""The multi-query service: shared catalog, admission control, metrics.

One :class:`QueryService` owns a mediator (catalog + source instances
+ metric registry) and serves many concurrent requests.  Shared across
*all* requests:

* the catalog and source statistics,
* one :class:`~repro.observability.caching.CachingUtilityMeasure` per
  utility-measure name — so request N's utility evaluations warm the
  cache for request N+1 (the measures themselves are stateless; all
  per-request state lives in the execution contexts),
* the :class:`~repro.observability.metrics.MetricRegistry`, exposing
  ``service.*`` counters and latency histograms.

Per request: a fresh orderer, a fresh
:class:`~repro.service.session.PipelinedSession`, and (when request
tracing is on) a private :class:`~repro.observability.tracing.Tracer`
whose span tree is returned with the result.

Two throttles implement load-shedding:

* an **admission-control semaphore** caps how many sessions run
  concurrently (``max_concurrent``);
* a **bounded work queue** (``backlog``) absorbs bursts ahead of the
  dispatchers; :meth:`submit` raises
  :class:`~repro.errors.ServiceOverloadedError` when it is full, which
  the TCP front end translates into an ``overloaded`` error record —
  backpressure reaches the client instead of an unbounded queue.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from queue import Full, Queue
from typing import Callable, Mapping, Optional

from repro.errors import (
    InternalError,
    ReproError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.datalog.query import ConjunctiveQuery
from repro.execution.mediator import AnswerBatch, Mediator
from repro.observability.caching import CachingUtilityMeasure
from repro.observability.journal import EventJournal, NOOP_JOURNAL
from repro.observability.metrics import MetricRegistry
from repro.observability.prometheus import render_registry
from repro.observability.tracing import Tracer
from repro.ordering.adaptive import AdaptiveOrderer
from repro.ordering.anyk import AnyKOrderer
from repro.ordering.bruteforce import ExhaustiveOrderer, PIOrderer
from repro.ordering.greedy import GreedyOrderer
from repro.ordering.idrips import IDripsOrderer
from repro.ordering.streamer import StreamerOrderer
from repro.resilience.manager import ResilienceManager
from repro.resilience.measure import HealthAwareMeasure
from repro.service.backends import ExecutionBackend
from repro.service.policy import RequestPolicy
from repro.service.session import PipelinedSession, SessionReport
from repro.sources.catalog import Catalog
from repro.utility.base import UtilityMeasure
from repro.utility.cost import LinearCost

__all__ = [
    "AUTO_ORDERER",
    "QueryRequest",
    "QueryService",
    "RequestResult",
    "ServiceConfig",
    "ORDERER_TABLE",
    "resolve_orderer_name",
]

#: Orderer constructors addressable over the wire.
ORDERER_TABLE: dict[str, Callable[[UtilityMeasure], object]] = {
    "pi": PIOrderer,
    "exhaustive": ExhaustiveOrderer,
    "idrips": IDripsOrderer,
    "streamer": StreamerOrderer,
    "greedy": GreedyOrderer,
    "anyk": AnyKOrderer,
}

#: The measure-dependent default: requests (and configs) naming this
#: pseudo-orderer resolve per measure via :func:`resolve_orderer_name`.
AUTO_ORDERER = "auto"


def resolve_orderer_name(name: str, utility: UtilityMeasure) -> str:
    """Resolve ``"auto"`` against a measure's structural flags.

    Fully monotonic measures get :class:`AnyKOrderer` — its lattice
    mode emits the first plan without materializing the product space,
    with a stream byte-identical to PI's (the equivalence sweeps in
    ``tests/ordering`` are the guarantee).  Everything else keeps the
    conservative PI default, whose interval refinement is the paper's
    reference behavior for non-monotonic measures.  Explicit names
    pass through untouched, so ``--default-orderer pi`` and per-request
    ``orderer`` overrides behave exactly as before.
    """
    if name != AUTO_ORDERER:
        return name
    return "anyk" if utility.is_fully_monotonic else "pi"


#: Per-batch streaming callback (invoked from the session's thread).
BatchCallback = Callable[[AnswerBatch], None]


@dataclass(frozen=True)
class ServiceConfig:
    """Concurrency and defaulting knobs of a :class:`QueryService`.

    ``adaptivity`` is the server-wide default for mid-stream
    re-ordering (requests override it via
    ``RequestPolicy.adaptivity``): ``"on"`` / ``"off"`` force it, and
    ``"auto"`` — the default — enables it exactly for requests that
    left orderer selection to the server (``--orderer auto``) on a
    service with a resilience manager.  A request that *named* an
    orderer asked for that algorithm's stream verbatim, so auto leaves
    it alone.
    """

    max_concurrent: int = 8
    backlog: int = 32
    executor_workers: int = 2
    queue_depth: int = 8
    admission_timeout_s: float = 30.0
    default_measure: str = "linear"
    default_orderer: str = AUTO_ORDERER
    default_policy: RequestPolicy = field(default_factory=RequestPolicy)
    trace_requests: bool = False
    adaptivity: str = "auto"

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ServiceError("max_concurrent must be at least 1")
        if self.backlog < 1:
            raise ServiceError("backlog must be at least 1")
        if self.adaptivity not in ("auto", "on", "off"):
            raise ServiceError(
                f"adaptivity must be 'auto', 'on' or 'off', "
                f"got {self.adaptivity!r}"
            )


@dataclass(frozen=True)
class QueryRequest:
    """One query admitted into the service."""

    query: ConjunctiveQuery
    request_id: str = ""
    measure: Optional[str] = None
    orderer: Optional[str] = None
    policy: Optional[RequestPolicy] = None


@dataclass
class RequestResult:
    """Everything one request produced."""

    request_id: str
    status: str  # ok | deadline_exceeded | cancelled | rejected | error
    batches: list[AnswerBatch] = field(default_factory=list)
    answers: frozenset = frozenset()
    report: Optional[SessionReport] = None
    error: Optional[str] = None
    spans: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def deadline_exceeded(self) -> bool:
        return self.status == "deadline_exceeded"


class _Pending:
    """A queued request waiting for a dispatcher (tiny future)."""

    __slots__ = ("request", "on_batch", "_done", "result")

    def __init__(self, request: QueryRequest, on_batch: Optional[BatchCallback]):
        self.request = request
        self.on_batch = on_batch
        self._done = threading.Event()
        self.result: Optional[RequestResult] = None

    def resolve(self, result: RequestResult) -> None:
        self.result = result
        self._done.set()

    def wait(self, timeout: Optional[float] = None) -> RequestResult:
        if not self._done.wait(timeout):
            raise ServiceError("timed out waiting for request result")
        if self.result is None:
            raise InternalError("request resolved without a result")
        return self.result


_SHUTDOWN = object()


class QueryService:
    """Serves concurrent anytime queries over one shared catalog."""

    def __init__(
        self,
        catalog: Catalog,
        source_facts: Mapping[str, set[tuple[object, ...]]],
        *,
        measures: Optional[Mapping[str, Callable[[], UtilityMeasure]]] = None,
        config: Optional[ServiceConfig] = None,
        registry: Optional[MetricRegistry] = None,
        backend: Optional[ExecutionBackend] = None,
        resilience: Optional[ResilienceManager] = None,
        journal: Optional[EventJournal] = None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.registry = registry if registry is not None else MetricRegistry()
        #: Shared across all requests: sessions consult its breakers
        #: and feed its health tracker (threaded in via the mediator).
        self.resilience = resilience
        #: One journal for the whole service; every event a request
        #: causes — here, in sessions, in the mediator, and in the
        #: resilience manager — carries that request's id.
        self.journal = journal if journal is not None else NOOP_JOURNAL
        if resilience is not None and not resilience.journal.enabled:
            resilience.journal = self.journal
        self.mediator = Mediator(
            catalog,
            source_facts,
            registry=self.registry,
            resilience=resilience,
            journal=self.journal,
        )
        self.backend = backend
        self._measure_factories: dict[str, Callable[[], UtilityMeasure]] = dict(
            measures if measures is not None else {"linear": LinearCost}
        )
        if self.config.default_measure not in self._measure_factories:
            raise ServiceError(
                f"default measure {self.config.default_measure!r} is not "
                f"among {sorted(self._measure_factories)}"
            )
        self._shared_measures: dict[str, UtilityMeasure] = {}
        self._measure_lock = threading.Lock()
        self._semaphore = threading.Semaphore(self.config.max_concurrent)
        self._queue: Queue = Queue(maxsize=self.config.backlog)
        self._dispatchers: list[threading.Thread] = []
        self._started = False
        self._ids = itertools.count(1)

        counter = self.registry.counter
        self._m_requests = counter("service.requests")
        self._m_accepted = counter("service.accepted")
        self._m_rejected = counter("service.rejected")
        self._m_completed = counter("service.completed")
        self._m_errors = counter("service.errors")
        self._m_deadline = counter("service.deadline_exceeded")
        self._m_cancelled = counter("service.cancelled")
        self._m_answers = counter("service.answers")
        self._g_active = self.registry.gauge("service.active")
        self._h_first = self.registry.histogram("service.first_answer_s")
        self._h_total = self.registry.histogram("service.total_s")

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "QueryService":
        """Spin up the dispatcher pool for the :meth:`submit` path."""
        if self._started:
            return self
        self._started = True
        for index in range(self.config.max_concurrent):
            thread = threading.Thread(
                target=self._dispatch_loop,
                name=f"repro-service-dispatch-{index}",
                daemon=True,
            )
            thread.start()
            self._dispatchers.append(thread)
        return self

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop dispatchers after the queued work drains."""
        if not self._started:
            return
        for _ in self._dispatchers:
            self._queue.put(_SHUTDOWN)
        for thread in self._dispatchers:
            thread.join(timeout=timeout)
        self._dispatchers.clear()
        self._started = False

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- request plumbing --------------------------------------------------------

    def measure_names(self) -> list[str]:
        return sorted(self._measure_factories)

    def shared_measure(self, name: str) -> UtilityMeasure:
        """The cross-request shared utility measure called *name*.

        Without resilience (or with ``health_aware`` off) this is a
        :class:`CachingUtilityMeasure` — request N's utility
        evaluations warm the cache for request N+1.  With health-aware
        re-ranking it is a :class:`HealthAwareMeasure` instead, and
        deliberately *uncached*: the cache keys by plan source names,
        which do not change when the observed failure rates do, so
        memoized utilities would go stale as source health drifts.
        """
        with self._measure_lock:
            measure = self._shared_measures.get(name)
            if measure is None:
                try:
                    factory = self._measure_factories[name]
                except KeyError:
                    raise ServiceError(
                        f"unknown measure {name!r}; "
                        f"have {sorted(self._measure_factories)}"
                    ) from None
                if self.resilience is not None and self.resilience.health_aware:
                    measure = HealthAwareMeasure(
                        factory(),
                        self.resilience.tracker,
                        min_observations=self.resilience.min_observations,
                    )
                else:
                    measure = CachingUtilityMeasure(
                        factory(), registry=self.registry
                    )
                self._shared_measures[name] = measure
        return measure

    def _make_orderer(
        self, name: str, utility: UtilityMeasure, *, adaptive: bool = False
    ):
        name = resolve_orderer_name(name, utility)
        try:
            factory = ORDERER_TABLE[name]
        except KeyError:
            raise ServiceError(
                f"unknown orderer {name!r}; have {sorted(ORDERER_TABLE)}"
            ) from None
        if adaptive and self.resilience is not None:
            return AdaptiveOrderer(
                utility,
                inner_factory=factory,
                epoch=self.resilience.epoch,
                registry=self.registry,
            )
        return factory(utility)

    def resolve_adaptivity(
        self, policy: RequestPolicy, requested_orderer: str
    ) -> bool:
        """Should this request re-order mid-stream?

        The per-request knob wins; otherwise the server default
        applies, where ``"auto"`` means "adaptive exactly when the
        request also left the orderer choice to the server and there
        is a resilience manager to supply the health signal".
        """
        if self.resilience is None:
            return False
        if policy.adaptivity is not None:
            return policy.adaptivity
        if self.config.adaptivity == "on":
            return True
        if self.config.adaptivity == "off":
            return False
        return requested_orderer == AUTO_ORDERER

    def next_request_id(self) -> str:
        return f"req-{next(self._ids)}"

    # -- exposition --------------------------------------------------------------

    def prometheus_text(self) -> str:
        """Every metric this service owns as Prometheus text.

        The service registry always renders; a resilience manager built
        over its *own* registry (the CLI's chaos setup does this)
        contributes its metrics too, so one scrape sees breaker-state
        gauges alongside the ``service.*`` series.
        """
        text = render_registry(self.registry)
        resilience = self.resilience
        if resilience is not None and resilience.registry is not self.registry:
            text += render_registry(resilience.registry)
        return text

    def registry_export(self) -> dict:
        """Every metric this service owns as one ``as_dict`` export.

        The shard-scrape counterpart of :meth:`prometheus_text`: the
        service registry plus (when distinct) the resilience registry,
        merged name-wise so the cluster router can feed the result
        straight into :meth:`MetricRegistry.merge`.
        """
        registry = self.registry  # snapshot methods lock internally
        resilience = self.resilience
        if resilience is not None and resilience.registry is not registry:
            return (
                MetricRegistry()
                .merge(registry)
                .merge(resilience.registry)
                .as_dict()
            )
        return registry.as_dict()

    # -- execution ---------------------------------------------------------------

    def execute(
        self,
        request: QueryRequest,
        on_batch: Optional[BatchCallback] = None,
    ) -> RequestResult:
        """Run one request to completion on the calling thread.

        Admission control applies: the call blocks until a concurrency
        slot frees up (bounded by ``admission_timeout_s``, after which
        the request is *rejected*, not errored).
        """
        request_id = request.request_id or self.next_request_id()
        self._m_requests.inc()
        policy = request.policy or self.config.default_policy
        admit_timeout = self.config.admission_timeout_s
        if policy.deadline_s is not None:
            admit_timeout = min(admit_timeout, policy.deadline_s)
        if not self._semaphore.acquire(timeout=admit_timeout):
            self._m_rejected.inc()
            if self.journal.enabled:
                self.journal.emit(
                    "request.rejected",
                    request_id=request_id,
                    code="admission_timeout",
                    message="admission timeout",
                )
            return RequestResult(
                request_id, "rejected", error="admission timeout"
            )
        self._m_accepted.inc()
        self._g_active.inc()
        measure_name = request.measure or self.config.default_measure
        orderer_name = request.orderer or self.config.default_orderer
        adaptive = self.resolve_adaptivity(policy, orderer_name)
        if orderer_name == AUTO_ORDERER:
            try:
                orderer_name = resolve_orderer_name(
                    orderer_name, self.shared_measure(measure_name)
                )
            except ServiceError:
                # Unknown measure: leave "auto" in place; the session
                # below reports the error through the usual path.
                pass
        if self.journal.enabled:
            self.journal.emit(
                "request.admitted",
                request_id=request_id,
                measure=measure_name,
                orderer=orderer_name,
            )
        try:
            return self._run_admitted(
                request_id, request.query, measure_name, orderer_name,
                policy, on_batch, adaptive=adaptive,
            )
        finally:
            self._g_active.dec()
            self._semaphore.release()

    def _run_admitted(
        self,
        request_id: str,
        query: ConjunctiveQuery,
        measure_name: str,
        orderer_name: str,
        policy: RequestPolicy,
        on_batch: Optional[BatchCallback],
        adaptive: bool = False,
    ) -> RequestResult:
        tracer = Tracer(enabled=self.config.trace_requests)
        try:
            utility = self.shared_measure(measure_name)
            orderer = self._make_orderer(
                orderer_name, utility, adaptive=adaptive
            )
            session = PipelinedSession(
                self.mediator,
                executor_workers=self.config.executor_workers,
                queue_depth=self.config.queue_depth,
                backend=self.backend,
                tracer=tracer,
                registry=self.registry,
            )
            batches: list[AnswerBatch] = []
            answers: set = set()
            for batch in session.stream(
                query,
                utility,
                orderer=orderer,
                policy=policy,
                request_id=request_id,
            ):
                batches.append(batch)
                answers.update(batch.new_answers)
                if on_batch is not None:
                    on_batch(batch)
            report = session.last_report
            if report is None:
                raise InternalError(
                    "session stream finished without leaving a report"
                )
        except ReproError as exc:
            self._m_errors.inc()
            if self.journal.enabled:
                self.journal.emit(
                    "request.completed",
                    request_id=request_id,
                    status="error",
                    plans=0,
                    answers=0,
                    elapsed_s=0.0,
                    first_answer_s=None,
                )
            return RequestResult(request_id, "error", error=str(exc))
        result = RequestResult(
            request_id,
            report.status,
            batches=batches,
            answers=frozenset(answers),
            report=report,
            spans=tracer.as_dict() if tracer.enabled else None,
        )
        with self.registry.lock:
            self._m_completed.inc()
            self._m_answers.inc(len(answers))
            if report.deadline_exceeded:
                self._m_deadline.inc()
            if report.cancelled:
                self._m_cancelled.inc()
            if report.first_answer_s is not None:
                self._h_first.observe(report.first_answer_s)
            self._h_total.observe(report.elapsed_s)
        if self.journal.enabled:
            self.journal.emit(
                "request.completed",
                request_id=request_id,
                status=report.status,
                plans=report.plans_processed,
                answers=report.answers,
                elapsed_s=report.elapsed_s,
                first_answer_s=report.first_answer_s,
            )
        return result

    # -- queued path -------------------------------------------------------------

    def submit(
        self,
        request: QueryRequest,
        on_batch: Optional[BatchCallback] = None,
    ) -> _Pending:
        """Enqueue a request for the dispatcher pool.

        Returns a handle whose :meth:`_Pending.wait` blocks for the
        result.  Raises :class:`~repro.errors.ServiceOverloadedError`
        immediately when the backlog is full.
        """
        if not self._started:
            raise ServiceError("service not started; call start() first")
        pending = _Pending(request, on_batch)
        try:
            self._queue.put_nowait(pending)
        except Full:
            self._m_requests.inc()
            self._m_rejected.inc()
            if self.journal.enabled:
                self.journal.emit(
                    "request.rejected",
                    request_id=request.request_id,
                    code="overloaded",
                    message=f"work queue full ({self.config.backlog} pending)",
                )
            raise ServiceOverloadedError(
                f"work queue full ({self.config.backlog} pending requests)"
            ) from None
        return pending

    def _dispatch_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            try:
                result = self.execute(item.request, on_batch=item.on_batch)
            except BaseException as exc:  # never kill a dispatcher
                result = RequestResult(
                    item.request.request_id or "?", "error", error=str(exc)
                )
            item.resolve(result)

"""The JSON-lines wire protocol of the query service.

One request or response per line, UTF-8 JSON, newline-terminated.
Stdlib only — any `nc`/`telnet`/`socket` client can drive the server.

Client → server (one object per query)::

    {"type": "query", "id": "q1", "query": "q(X) :- rel0(X, Y)",
     "measure": "linear", "orderer": "greedy",
     "deadline_s": 2.0, "max_plans": 10, "first_k_answers": 5,
     "retry_attempts": 3, "adaptive": true}

Only ``query`` is required; everything else defaults server-side.
``adaptive`` overrides the server's mid-stream re-ordering default
(see ``ServiceConfig.adaptivity``) for this request only.

Server → client, streamed as plans finish::

    {"type": "batch", "id": "q1", "rank": 1, "plan": ["v3", "v5"],
     "utility": -12.5, "sound": true, "skipped": false, "failed": false,
     "answers": [["a", "b"]], "new_answers": [["a", "b"]]}
    ...
    {"type": "summary", "id": "q1", "status": "ok", "plans": 9,
     "answers": 4, "deadline_exceeded": false,
     "plans_skipped": 0, "sources_skipped": [], "answers_partial": false,
     "breaker_states": {}, ...}

Degradation accounting is always present: ``skipped`` marks a plan a
circuit breaker blocked, ``failed`` one that exhausted its retries,
and every summary carries ``plans_skipped`` / ``plans_failed`` /
``sources_skipped`` / ``answers_partial`` / ``breaker_states`` (see
``docs/resilience.md``).

Errors (bad request, overload) are terminal for that request::

    {"type": "error", "id": "q1", "code": "overloaded", "message": "..."}

Besides queries, two **control records** are answered immediately (one
reply line each) — the cluster layer's probe-and-scrape primitives,
but any client may send them::

    {"type": "health"}   -> {"type": "health", "status": "ok", ...}
    {"type": "metrics"}  -> {"type": "metrics", "metrics": {...}}

A health reply echoes the server's identity fields (e.g. the worker's
``shard`` number); a metrics reply carries the full
``MetricRegistry.as_dict()`` export, which the router feeds to
:meth:`~repro.observability.metrics.MetricRegistry.merge` for
cross-shard aggregation.

Values inside answer tuples are JSON scalars when possible and
``str()``-ified otherwise; rows are sorted so payloads are stable
across runs and safe to diff in tests.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.errors import ParseError, ProtocolError
from repro.datalog.parser import parse_query
from repro.execution.mediator import AnswerBatch
from repro.service.policy import RequestPolicy, RetryPolicy
from repro.service.server import QueryRequest, RequestResult

__all__ = [
    "CONTROL_TYPES",
    "PROTOCOL_VERSION",
    "RECORD_TYPES",
    "batch_record",
    "decode_line",
    "encode_line",
    "error_record",
    "health_record",
    "metrics_record",
    "request_record",
    "request_from_record",
    "summary_record",
]

PROTOCOL_VERSION = 1

#: Record types answered with exactly one reply line, no session.
CONTROL_TYPES = ("health", "metrics")

#: The closed record-type table: every ``type`` value legal on the
#: wire, mapped to the fields *any* instance of it must carry.  The
#: sets are minimal-for-any-instance — a bare ``{"type": "health"}``
#: probe is a complete request even though replies carry more — so the
#: static checker (``CON005``) can hold every record literal in the
#: frontend/router to them without flagging legitimate short forms.
RECORD_TYPES: dict[str, frozenset[str]] = {
    "query": frozenset({"query"}),
    "batch": frozenset(
        {
            "id",
            "rank",
            "plan",
            "utility",
            "sound",
            "skipped",
            "failed",
            "answers",
            "new_answers",
        }
    ),
    "summary": frozenset({"id", "status"}),
    "error": frozenset({"id", "code", "message"}),
    "health": frozenset(),
    "metrics": frozenset(),
}

_SCALARS = (str, int, float, bool, type(None))


def _value(value: object) -> object:
    return value if isinstance(value, _SCALARS) else str(value)


def _rows(answers) -> list[list[object]]:
    rows = [[_value(v) for v in row] for row in answers]
    rows.sort(key=repr)
    return rows


def encode_line(record: dict) -> bytes:
    """One wire line (including the terminating newline)."""
    return (json.dumps(record, sort_keys=True, default=str) + "\n").encode("utf-8")


def decode_line(line: bytes | str) -> dict:
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from None
    if not isinstance(record, dict):
        raise ProtocolError(f"expected a JSON object, got {type(record).__name__}")
    return record


# -- client-side encoding --------------------------------------------------------


def request_record(
    query_text: str,
    *,
    request_id: Optional[str] = None,
    measure: Optional[str] = None,
    orderer: Optional[str] = None,
    deadline_s: Optional[float] = None,
    max_plans: Optional[int] = None,
    first_k_answers: Optional[int] = None,
    retry_attempts: Optional[int] = None,
    adaptive: Optional[bool] = None,
) -> dict:
    record: dict = {"type": "query", "query": query_text}
    if request_id is not None:
        record["id"] = request_id
    for key, value in (
        ("measure", measure),
        ("orderer", orderer),
        ("deadline_s", deadline_s),
        ("max_plans", max_plans),
        ("first_k_answers", first_k_answers),
        ("retry_attempts", retry_attempts),
        ("adaptive", adaptive),
    ):
        if value is not None:
            record[key] = value
    return record


# -- server-side decoding --------------------------------------------------------


def request_from_record(
    record: dict, *, default_policy: Optional[RequestPolicy] = None
) -> QueryRequest:
    """Parse a ``query`` record into a :class:`QueryRequest`.

    Raises :class:`~repro.errors.ProtocolError` on malformed records
    so the front end can answer with an error record instead of
    dropping the connection.
    """
    kind = record.get("type", "query")
    if kind != "query":
        raise ProtocolError(f"unsupported record type {kind!r}")
    text = record.get("query")
    if not isinstance(text, str) or not text.strip():
        raise ProtocolError("missing 'query' text")
    try:
        query = parse_query(text)
    except ParseError as exc:
        raise ProtocolError(f"unparsable query: {exc}") from None

    defaults = default_policy if default_policy is not None else RequestPolicy()

    def _number(key: str, kind_check, minimum) -> Optional[float]:
        value = record.get(key)
        if value is None:
            return None
        if not isinstance(value, kind_check) or isinstance(value, bool):
            raise ProtocolError(f"{key!r} must be a number, got {value!r}")
        if value < minimum:
            raise ProtocolError(f"{key!r} must be >= {minimum}, got {value!r}")
        return value

    deadline_s = _number("deadline_s", (int, float), 0)
    max_plans = _number("max_plans", int, 1)
    first_k = _number("first_k_answers", int, 1)
    retry_attempts = _number("retry_attempts", int, 1)

    adaptive = record.get("adaptive")
    if adaptive is not None and not isinstance(adaptive, bool):
        raise ProtocolError(
            f"'adaptive' must be a boolean, got {adaptive!r}"
        )

    policy = RequestPolicy(
        deadline_s=deadline_s if deadline_s is not None else defaults.deadline_s,
        max_plans=int(max_plans) if max_plans is not None else defaults.max_plans,
        first_k_answers=(
            int(first_k) if first_k is not None else defaults.first_k_answers
        ),
        retry=(
            RetryPolicy(
                max_attempts=int(retry_attempts),
                base_s=defaults.retry.base_s,
                factor=defaults.retry.factor,
                cap_s=defaults.retry.cap_s,
                jitter=defaults.retry.jitter,
                jitter_seed=defaults.retry.jitter_seed,
            )
            if retry_attempts is not None
            else defaults.retry
        ),
        adaptivity=adaptive if adaptive is not None else defaults.adaptivity,
    )
    return QueryRequest(
        query=query,
        request_id=str(record.get("id", "")),
        measure=record.get("measure"),
        orderer=record.get("orderer"),
        policy=policy,
    )


# -- server-side encoding --------------------------------------------------------


def batch_record(request_id: str, batch: AnswerBatch) -> dict:
    return {
        "type": "batch",
        "id": request_id,
        "rank": batch.rank,
        "plan": list(batch.plan.key),
        "utility": batch.utility,
        "sound": batch.sound,
        "skipped": batch.skipped,
        "failed": batch.failed,
        "answers": _rows(batch.answers),
        "new_answers": _rows(batch.new_answers),
    }


def summary_record(result: RequestResult) -> dict:
    record: dict = {
        "type": "summary",
        "id": result.request_id,
        "status": result.status,
        "protocol": PROTOCOL_VERSION,
        "batches": len(result.batches),
        "answers": len(result.answers),
    }
    if result.report is not None:
        record.update(result.report.as_dict())
        record["status"] = result.status
    if result.spans:
        record["spans"] = result.spans
    return record


def error_record(request_id: str, code: str, message: str) -> dict:
    return {
        "type": "error",
        "id": request_id,
        "code": code,
        "message": message,
    }


# -- control records -------------------------------------------------------------


def health_record(
    request_id: str = "", *, identity: Optional[dict] = None
) -> dict:
    """A liveness reply: ``status: ok`` plus the server's identity."""
    record: dict = {"type": "health", "id": request_id, "status": "ok"}
    if identity:
        record.update(identity)
    return record


def metrics_record(request_id: str, metrics: dict) -> dict:
    """A metrics-scrape reply carrying a registry ``as_dict`` export."""
    return {"type": "metrics", "id": request_id, "metrics": metrics}

"""Per-request execution policies: deadlines, budgets, cancellation, retries.

A :class:`RequestPolicy` travels with one query through the service
stack.  All of its knobs are *cooperative*: the pipelined session
checks the deadline and the cancellation token between units of work
(one plan pulled from the orderer, one execution attempt), so a policy
can never tear a request mid-plan — partial results are always a
clean prefix of the batch stream.

Deadlines use the monotonic clock and are represented as absolute
instants (:class:`Deadline`), so every thread of a session agrees on
"expired" regardless of when it first looks.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ServiceError

__all__ = [
    "CancellationToken",
    "Deadline",
    "RequestPolicy",
    "RetryPolicy",
]


class CancellationToken:
    """A cooperative, thread-safe cancellation flag.

    The caller keeps a reference and calls :meth:`cancel`; every stage
    of the session polls :attr:`cancelled`.  Waiting with a timeout is
    supported so backoff sleeps wake up immediately on cancellation.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: float) -> bool:
        """Sleep up to *timeout* seconds; True if cancelled meanwhile."""
        return self._event.wait(timeout)

    def __repr__(self) -> str:
        return f"<CancellationToken cancelled={self.cancelled}>"


class Deadline:
    """An absolute monotonic-clock instant a request must finish by."""

    __slots__ = ("at",)

    def __init__(self, at: Optional[float]) -> None:
        self.at = at

    @classmethod
    def after(cls, seconds: Optional[float]) -> "Deadline":
        """A deadline *seconds* from now; None means "no deadline"."""
        if seconds is None:
            return cls(None)
        if seconds < 0:
            raise ServiceError(f"deadline must be non-negative, got {seconds}")
        return cls(time.monotonic() + seconds)

    @property
    def expired(self) -> bool:
        return self.at is not None and time.monotonic() >= self.at

    def remaining(self) -> Optional[float]:
        """Seconds left (clamped at 0), or None for "no deadline"."""
        if self.at is None:
            return None
        return max(0.0, self.at - time.monotonic())

    def clamp(self, timeout: float) -> float:
        """*timeout* shortened to the remaining budget."""
        remaining = self.remaining()
        return timeout if remaining is None else min(timeout, remaining)

    def __repr__(self) -> str:
        if self.at is None:
            return "<Deadline none>"
        return f"<Deadline in {self.remaining():.3f}s>"


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff for transient execution failures.

    Attempt ``n`` (1-based) that fails is retried after
    ``base * factor**(n-1)`` seconds, capped at ``cap`` — the classic
    schedule.  With ``jitter=0`` (the default) the schedule is fully
    deterministic, so service runs replay exactly.

    ``jitter`` opts into *decorrelated* jitter: the delay is spread
    over ``[d*(1-jitter), d*(1+2*jitter)]`` (still capped at ``cap``),
    which desynchronizes retry storms when many cluster workers lose
    the same source at the same instant.  The draw is a pure hash of
    ``(jitter_seed, salt, failed_attempts)`` — no global RNG — so
    chaos replays with the same seed and request ids stay bit-for-bit
    reproducible while *different* requests spread out.
    """

    max_attempts: int = 1
    base_s: float = 0.01
    factor: float = 2.0
    cap_s: float = 1.0
    jitter: float = 0.0
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ServiceError(
                f"max_attempts must be at least 1, got {self.max_attempts}"
            )
        if self.base_s < 0 or self.cap_s < 0 or self.factor < 1.0:
            raise ServiceError(
                f"invalid backoff parameters {self.base_s}/{self.factor}/{self.cap_s}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ServiceError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    def _draw(self, salt: str, failed_attempts: int) -> float:
        """A deterministic uniform draw in [0, 1) for this retry."""
        payload = f"{self.jitter_seed}:{salt}:{failed_attempts}".encode()
        digest = hashlib.sha256(payload).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def delay(self, failed_attempts: int, *, salt: str = "") -> float:
        """Backoff before the next try, after *failed_attempts* failures.

        *salt* individualizes the jitter stream (the session passes its
        request id); it has no effect when ``jitter == 0``.
        """
        if failed_attempts < 1:
            raise ServiceError("delay() is asked after at least one failure")
        base = self.base_s * self.factor ** (failed_attempts - 1)
        if self.jitter > 0.0:
            # Decorrelated: uniformly inside [1-j, 1+2j] around the
            # exponential schedule, biased long so backoff pressure is
            # never *reduced* on average.
            spread = self._draw(salt, failed_attempts) * 3.0 * self.jitter
            base *= 1.0 - self.jitter + spread
        return min(self.cap_s, base)


@dataclass(frozen=True)
class RequestPolicy:
    """Everything one request may bound: time, work, answers.

    ``deadline_s``
        Wall-clock budget; on expiry the session stops cleanly and the
        result carries ``deadline_exceeded=True`` (it never raises).
    ``max_plans``
        At most this many plans pulled from the ordering (sound or
        not), mirroring ``Mediator.answer``'s parameter.
    ``first_k_answers``
        Stop as soon as this many *distinct* answer tuples have been
        produced — the paper's "first answers fast" contract as an
        explicit budget.
    ``retry``
        Backoff schedule for :class:`~repro.errors.TransientExecutionError`.
    ``cancellation``
        Optional shared token for caller-initiated cancellation.
    ``adaptivity``
        Per-request override of the server's adaptivity default:
        True forces mid-stream re-ordering on, False forces it off,
        None (the default) defers to the server configuration.
    """

    deadline_s: Optional[float] = None
    max_plans: Optional[int] = None
    first_k_answers: Optional[int] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    cancellation: Optional[CancellationToken] = None
    adaptivity: Optional[bool] = None

    def start_deadline(self) -> Deadline:
        return Deadline.after(self.deadline_s)

    def token(self) -> CancellationToken:
        return self.cancellation if self.cancellation is not None else CancellationToken()

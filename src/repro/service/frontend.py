"""The stdlib TCP front end: ``repro serve``.

A :class:`ServiceTCPServer` is a ``ThreadingTCPServer`` speaking the
JSON-lines protocol of :mod:`repro.service.protocol`.  Connections are
persistent: a client may send any number of query records and receives
each query's batch stream (as plans finish executing, i.e. genuinely
anytime) followed by a summary record.

Requests are pushed through :meth:`QueryService.submit`, so the
service's bounded work queue and admission semaphore apply to network
traffic exactly as to in-process callers; a full backlog surfaces as
an ``overloaded`` error record on the wire.
"""

from __future__ import annotations

import dataclasses
import socket
import socketserver
import threading
from typing import Optional

from repro.errors import ProtocolError, ServiceOverloadedError
from repro.service import protocol
from repro.service.server import QueryService

__all__ = ["ServiceTCPServer", "start_server"]


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read query lines, stream batch/summary lines."""

    server: "ServiceTCPServer"
    # Batches are many small writes that must reach the client *now* —
    # that is the whole anytime point; Nagle+delayed-ACK would add
    # ~40ms per line.
    disable_nagle_algorithm = True

    def handle(self) -> None:
        try:
            self._serve_lines()
        except (OSError, ValueError):
            # A client that times out, resets, or half-writes a frame
            # kills its own connection, never the handler thread (and
            # never the server): the next connection starts clean.
            pass

    def _serve_lines(self) -> None:
        service = self.server.service
        for line in self.rfile:
            if not line.strip():
                continue
            request_id = ""
            try:
                record = protocol.decode_line(line)
                request_id = str(record.get("id", ""))
                if record.get("type") in protocol.CONTROL_TYPES:
                    # Probe/scrape records are answered inline — they
                    # never enter admission control and never touch the
                    # service counters, so a cluster health probe does
                    # not skew the request metrics it is guarding.
                    self._send(self._control_reply(record, request_id))
                    continue
                request = protocol.request_from_record(
                    record, default_policy=service.config.default_policy
                )
            except ProtocolError as exc:
                self._send(protocol.error_record(request_id, "bad_request", str(exc)))
                continue
            if not request.request_id:
                request = dataclasses.replace(
                    request, request_id=service.next_request_id()
                )
            if service.journal.enabled:
                # The first event of a request's lifecycle: here the
                # wire-level id and the service-level correlation id
                # become the same thing.
                service.journal.emit(
                    "request.received",
                    request_id=request.request_id,
                    query=str(request.query),
                )

            def on_batch(batch, _id=request.request_id):
                # Invoked from the dispatcher thread; the handler
                # thread is parked in wait() meanwhile, so writes
                # never interleave.
                self._send(protocol.batch_record(_id, batch))

            try:
                pending = service.submit(request, on_batch=on_batch)
            except ServiceOverloadedError as exc:
                self._send(
                    protocol.error_record(
                        request.request_id, "overloaded", str(exc)
                    )
                )
                continue
            result = pending.wait()
            if result.status == "error":
                self._send(
                    protocol.error_record(
                        result.request_id, "error", result.error or "unknown"
                    )
                )
            else:
                self._send(protocol.summary_record(result))

    def _control_reply(self, record: dict, request_id: str) -> dict:
        service = self.server.service
        if record.get("type") == "health":
            return protocol.health_record(
                request_id, identity=self.server.identity
            )
        return protocol.metrics_record(request_id, service.registry_export())

    def _send(self, record: dict) -> None:
        try:
            self.wfile.write(protocol.encode_line(record))
            self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            # Client went away mid-stream; the session notices on its
            # own (the batch callbacks become no-ops) and winds down.
            pass


class ServiceTCPServer(socketserver.ThreadingTCPServer):
    """Threading TCP server bound to a :class:`QueryService`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: QueryService,
        *,
        identity: Optional[dict] = None,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        #: Constant fields echoed in health replies — a cluster worker
        #: announces its ``shard`` number here so a probe can detect a
        #: port serving the wrong process after a restart race.
        self.identity = dict(identity) if identity else {}

    @property
    def port(self) -> int:
        return self.server_address[1]


def start_server(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    identity: Optional[dict] = None,
) -> tuple[ServiceTCPServer, threading.Thread]:
    """Start serving in a background thread; ``port=0`` picks a free one.

    The caller shuts down with ``server.shutdown(); server.server_close()``
    (and then ``service.shutdown()``).
    """
    service.start()
    server = ServiceTCPServer((host, port), service, identity=identity)
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.05},
        name="repro-serve",
        daemon=True,
    )
    thread.start()
    return server, thread


def connect(host: str, port: int, timeout: float = 10.0) -> socket.socket:
    """A client socket for the JSON-lines protocol (loadgen + tests)."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock

"""The pipelined anytime session: ordering overlapped with execution.

``Mediator.answer`` is strictly sequential: the orderer cannot start
computing plan ``i+1`` until plan ``i`` has finished executing.  The
paper's Section 2 motivation is the opposite — *"the mediator should
begin executing the best plan while the ordering algorithm computes
the next ones"*.  :class:`PipelinedSession` realizes that:

* a **producer thread** drives the plan orderer and the soundness
  test, feeding a bounded queue of work items (backpressure keeps the
  orderer at most ``queue_depth`` plans ahead of execution);
* a pool of **executor workers** evaluates sound plans concurrently
  over a read-only view of the source instances, retrying transient
  backend failures with exponential backoff;
* the **consumer** (the thread iterating :meth:`stream`) reassembles
  results into emission order and computes ``new_answers`` against
  the running union — so the batch stream is *identical*, plan for
  plan and byte for byte, to the sequential mediator's.

Why the ordering survives the concurrency: soundness for plan ``i``
is decided in the producer thread immediately after the orderer
yields it, *before* the generator is resumed — exactly when the
sequential mediator decides it.  The orderers' ``on_emit`` callback
(asked on resumption) therefore sees the same answers in the same
order, and the emitted plan sequence cannot diverge.  Execution
results never influence the ordering, only their soundness bits do,
so running executions out of order is unobservable after the
consumer's reordering.

Deadlines and cancellation are cooperative and clean: on expiry the
session stops pulling plans, drains in-flight work, and finishes the
batch stream early; :attr:`SessionReport.deadline_exceeded` is set
instead of raising, so partial results always reach the caller.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from queue import Empty, Full, Queue
from typing import Iterator, Optional

from repro.errors import (
    ExecutionError,
    InternalError,
    TransientExecutionError,
)
from repro.datalog.query import ConjunctiveQuery
from repro.execution.mediator import AnswerBatch, Mediator
from repro.observability.journal import EventJournal
from repro.observability.metrics import MetricRegistry
from repro.observability.tracing import NOOP_TRACER, Stopwatch, Tracer
from repro.ordering.base import PlanOrderer
from repro.reformulation.plans import QueryPlan
from repro.reformulation.soundness import plan_query
from repro.resilience.manager import ResilienceManager
from repro.service.backends import ExecutionBackend, InMemoryBackend
from repro.service.policy import RequestPolicy
from repro.utility.base import UtilityMeasure

__all__ = ["PipelinedSession", "SessionReport"]

#: Poll granularity for queue hand-offs and condition waits.  Only a
#: liveness bound (threads notice stop/deadline at least this often);
#: normal hand-offs are notification-driven and never wait this long.
_TICK_S = 0.05


@dataclass
class SessionReport:
    """What happened to one pipelined request.

    The degradation fields (``plans_skipped`` through
    ``breaker_states``) are always present — callers can rely on every
    summary record carrying them, zeroed when nothing degraded.  See
    ``docs/resilience.md``.
    """

    plans_processed: int = 0
    sound_plans: int = 0
    unsound_plans: int = 0
    answers: int = 0
    retries: int = 0
    deadline_exceeded: bool = False
    cancelled: bool = False
    satisfied: bool = False  # first_k_answers reached
    exhausted: bool = False  # plan budget fully drained
    first_answer_s: Optional[float] = None
    elapsed_s: float = 0.0
    plans_skipped: int = 0  # breaker blocked a source, never executed
    plans_failed: int = 0  # retries exhausted, gracefully dropped
    sources_skipped: list[str] = field(default_factory=list)
    answers_partial: bool = False
    breaker_states: dict[str, str] = field(default_factory=dict)

    @property
    def status(self) -> str:
        if self.cancelled:
            return "cancelled"
        if self.deadline_exceeded:
            return "deadline_exceeded"
        return "ok"

    def as_dict(self) -> dict[str, object]:
        return {
            "status": self.status,
            "plans_processed": self.plans_processed,
            "sound_plans": self.sound_plans,
            "unsound_plans": self.unsound_plans,
            "answers": self.answers,
            "retries": self.retries,
            "deadline_exceeded": self.deadline_exceeded,
            "cancelled": self.cancelled,
            "satisfied": self.satisfied,
            "exhausted": self.exhausted,
            "first_answer_s": self.first_answer_s,
            "elapsed_s": self.elapsed_s,
            "plans_skipped": self.plans_skipped,
            "plans_failed": self.plans_failed,
            "sources_skipped": list(self.sources_skipped),
            "answers_partial": self.answers_partial,
            "breaker_states": dict(self.breaker_states),
        }


class _WorkItem:
    """One emitted plan travelling from producer to consumer."""

    __slots__ = (
        "ordered", "sound", "executable", "answers", "retries",
        "error", "dropped", "execute_s", "skipped_sources",
    )

    def __init__(self, ordered, sound: bool, executable) -> None:
        self.ordered = ordered
        self.sound = sound
        self.executable = executable
        self.answers: frozenset = frozenset()
        self.retries = 0
        self.error: Optional[BaseException] = None
        self.dropped = False  # deadline/cancel hit before execution
        self.execute_s = 0.0
        #: Breaker-blocked source names; non-empty means never executed.
        self.skipped_sources: tuple[str, ...] = ()


_DONE = object()


class _SessionRun:
    """Shared state of one in-flight pipelined request."""

    def __init__(self) -> None:
        self.cond = threading.Condition()
        self.results: dict[int, _WorkItem] = {}
        self.stop = threading.Event()
        self.produced: Optional[int] = None  # total plans, once known
        self.producer_complete = False  # budget drained (not aborted)
        self.producer_error: Optional[BaseException] = None

    def publish(self, item: _WorkItem) -> None:
        with self.cond:
            self.results[item.ordered.rank] = item
            self.cond.notify_all()

    def finish_producing(self, produced: int, complete: bool,
                         error: Optional[BaseException]) -> None:
        with self.cond:
            self.produced = produced
            self.producer_complete = complete
            self.producer_error = error
            self.cond.notify_all()


class PipelinedSession:
    """Runs queries through a mediator with ordering/execution overlap.

    One session instance serves one request at a time (the service
    layer creates a session per admitted request); the mediator,
    registry, and backend it wraps may be shared freely.
    """

    def __init__(
        self,
        mediator: Mediator,
        *,
        executor_workers: int = 2,
        queue_depth: int = 8,
        backend: Optional[ExecutionBackend] = None,
        policy: Optional[RequestPolicy] = None,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricRegistry] = None,
        resilience: Optional[ResilienceManager] = None,
        journal: Optional[EventJournal] = None,
    ) -> None:
        if executor_workers < 1:
            raise ExecutionError("executor_workers must be at least 1")
        if queue_depth < 1:
            raise ExecutionError("queue_depth must be at least 1")
        self.mediator = mediator
        self.executor_workers = executor_workers
        self.queue_depth = queue_depth
        self.backend = backend if backend is not None else InMemoryBackend()
        self.policy = policy if policy is not None else RequestPolicy()
        self.tracer = tracer if tracer is not None else mediator.tracer
        self.registry = registry if registry is not None else mediator.registry
        self.journal = journal if journal is not None else mediator.journal
        self.resilience = (
            resilience
            if resilience is not None
            else getattr(mediator, "resilience", None)
        )
        self.last_report: Optional[SessionReport] = None
        self._plans_pipelined = self.registry.counter("service.plans_pipelined")
        self._retries = self.registry.counter("service.retries")
        self._execute_hist = self.registry.histogram("service.execute_s")

    # -- the pipeline ------------------------------------------------------------

    def stream(
        self,
        query: ConjunctiveQuery,
        utility: UtilityMeasure,
        *,
        orderer: Optional[PlanOrderer] = None,
        policy: Optional[RequestPolicy] = None,
        request_id: str = "",
        adaptive: bool = False,
    ) -> Iterator[AnswerBatch]:
        """Yield answer batches in emission order, pipelined.

        Semantically equivalent to ``Mediator.answer`` (same plans,
        same order, same batches) with ordering, soundness, and
        execution overlapped across threads.  After the generator
        finishes (or is closed early), :attr:`last_report` describes
        the run.  ``request_id`` correlates this run's journal events
        (emitted from the producer, executor, and consumer threads —
        the journal serializes them with one global ``seq``).

        ``adaptive`` (ignored when *orderer* is supplied) wraps the
        mediator's orderer factory in the health-epoch-watching
        :class:`~repro.ordering.adaptive.AdaptiveOrderer`.  The epoch
        is bumped by executor workers (and any concurrent session)
        recording outcomes into the shared resilience manager; the
        producer thread notices at its next resumption — between two
        ``on_emit`` exchanges, which is exactly where the lazy-orderer
        contract allows re-planning.
        """
        mediator = self.mediator
        resilience = self.resilience
        policy = policy if policy is not None else self.policy
        deadline = policy.start_deadline()
        token = policy.token()
        report = SessionReport()
        self.last_report = report
        journal = self.journal.bind(request_id)
        watch = Stopwatch().start()

        with self.tracer.span("service.reformulate"):
            space = mediator.reformulate(query)
        if orderer is None:
            orderer = mediator.make_orderer(utility, adaptive=adaptive)
        bind = getattr(orderer, "bind_journal", None)
        if bind is not None:
            bind(journal)
        adopted_tracer = False
        if orderer.tracer is NOOP_TRACER and self.tracer.enabled:
            # The producer thread owns the orderer for the whole run,
            # so its spans nest under this request's trace safely.
            orderer.tracer = self.tracer
            adopted_tracer = True
        budget = mediator.resolve_budget(space, policy.max_plans)

        run = _SessionRun()
        work_q: Queue = Queue(maxsize=self.queue_depth)
        database = mediator.execution_database()
        soundness: dict[tuple[str, ...], bool] = {}

        def on_emit(plan: QueryPlan) -> bool:
            try:
                return soundness[plan.key]
            except KeyError:
                raise ExecutionError(
                    f"orderer asked about unprocessed plan {plan}"
                ) from None

        def aborted() -> bool:
            return run.stop.is_set() or token.cancelled or deadline.expired

        def put_abortable(item) -> bool:
            """Enqueue unless the session is shutting down."""
            while not run.stop.is_set():
                try:
                    work_q.put(item, timeout=_TICK_S)
                    return True
                except Full:
                    continue
            return False

        def produce() -> None:
            produced = 0
            complete = False
            error: Optional[BaseException] = None
            try:
                plans = orderer.order(space, budget, on_emit=on_emit)
                for ordered in plans:
                    if aborted():
                        break
                    # Soundness is decided here — before the orderer is
                    # resumed — exactly as in the sequential mediator,
                    # so on_emit always finds its answer ready.
                    executable = plan_query(query, ordered.plan)
                    sound = executable is not None
                    soundness[ordered.plan.key] = sound
                    if journal.enabled:
                        journal.emit(
                            "plan.emitted",
                            rank=ordered.rank,
                            plan=list(ordered.plan.key),
                            utility=ordered.utility,
                            sound=sound,
                        )
                    produced += 1
                    if not put_abortable(_WorkItem(ordered, sound, executable)):
                        produced -= 1
                        break
                else:
                    complete = True
            except BaseException as exc:  # surfaced on the consumer
                error = exc
            finally:
                run.finish_producing(produced, complete, error)
                for _ in range(self.executor_workers):
                    if not put_abortable(_DONE):
                        break

        def execute_with_retries(item: _WorkItem, tracer: Tracer) -> None:
            attempts = 0
            sources = (
                ResilienceManager.sources_of(item.ordered.plan)
                if resilience is not None
                else ()
            )
            while True:
                attempts += 1
                try:
                    with tracer.span("service.worker.execute"):
                        with Stopwatch() as attempt_watch:
                            item.answers = self.backend.execute(
                                item.executable, database
                            )
                    item.execute_s += attempt_watch.elapsed
                    if resilience is not None:
                        resilience.record_success(
                            sources, attempt_watch.elapsed,
                            request_id=request_id,
                        )
                    return
                except TransientExecutionError as exc:
                    if resilience is not None:
                        resilience.record_failure(
                            sources, exc, request_id=request_id
                        )
                    if (
                        attempts >= policy.retry.max_attempts
                        or aborted()
                    ):
                        item.error = exc
                        return
                    item.retries += 1
                    delay = policy.retry.delay(attempts, salt=request_id)
                    if journal.enabled:
                        journal.emit(
                            "plan.retry",
                            rank=item.ordered.rank,
                            attempt=attempts,
                            delay_s=delay,
                        )
                    if delay > 0.0:
                        # Sleep on the stop event so shutdown and
                        # cancellation cut the backoff short.
                        run.stop.wait(deadline.clamp(delay))
                except BaseException as exc:
                    # Non-transient failures (PermanentSourceError,
                    # engine bugs) never retry; source-attributed ones
                    # still feed the health tracker and breakers.
                    if resilience is not None and isinstance(
                        exc, ExecutionError
                    ):
                        resilience.record_failure(
                            sources, exc, request_id=request_id
                        )
                    item.error = exc
                    return

        def work(tracer: Tracer) -> None:
            while True:
                try:
                    item = work_q.get(timeout=_TICK_S)
                except Empty:
                    if run.stop.is_set():
                        return
                    continue
                if item is _DONE:
                    return
                if token.cancelled or deadline.expired:
                    item.dropped = True
                elif item.sound:
                    if resilience is not None:
                        item.skipped_sources = resilience.admit(
                            item.ordered.plan, request_id=request_id
                        )
                    if not item.skipped_sources:
                        execute_with_retries(item, tracer)
                run.publish(item)

        producer = threading.Thread(
            target=produce, name="repro-service-producer", daemon=True
        )
        # Tracers are single-threaded recorders, so every worker gets a
        # private one; the consumer folds them into the session tracer
        # after the workers have quiesced (see the ``finally`` below).
        worker_tracers = [
            Tracer(enabled=self.tracer.enabled)
            for _ in range(self.executor_workers)
        ]
        workers = [
            threading.Thread(
                target=work,
                args=(worker_tracers[i],),
                name=f"repro-service-exec-{i}",
                daemon=True,
            )
            for i in range(self.executor_workers)
        ]

        seen: set[tuple[object, ...]] = set()
        next_rank = 1
        try:
            producer.start()
            for worker in workers:
                worker.start()
            while True:
                with run.cond:
                    while True:
                        if next_rank in run.results:
                            item = run.results.pop(next_rank)
                            break
                        if run.produced is not None and next_rank > run.produced:
                            item = None
                            break
                        if token.cancelled or deadline.expired:
                            item = None
                            break
                        run.cond.wait(timeout=_TICK_S)
                if item is None:
                    if run.producer_error is not None:
                        raise run.producer_error
                    drained = (
                        run.produced is not None and next_rank > run.produced
                    )
                    if drained and run.producer_complete:
                        report.exhausted = True
                    elif token.cancelled:
                        report.cancelled = True
                    elif deadline.expired:
                        report.deadline_exceeded = True
                    else:
                        # Producer aborted on deadline/cancel observed
                        # only in its own thread.
                        report.cancelled = token.cancelled
                        report.deadline_exceeded = not token.cancelled
                    return
                if item.dropped:
                    if token.cancelled:
                        report.cancelled = True
                    else:
                        report.deadline_exceeded = True
                    return
                if item.error is not None and (
                    resilience is None or not resilience.graceful
                ):
                    report.retries += item.retries
                    raise ExecutionError(
                        f"plan {item.ordered.plan} failed after "
                        f"{item.retries + 1} attempt(s)"
                    ) from item.error
                skipped = bool(item.skipped_sources)
                failed = item.error is not None
                new = frozenset(item.answers - seen)
                seen.update(item.answers)
                batch = AnswerBatch(
                    item.ordered.rank,
                    item.ordered.plan,
                    item.ordered.utility,
                    item.sound,
                    item.answers,
                    new,
                    skipped=skipped,
                    failed=failed,
                )
                # Shared-registry updates are serialized: several
                # sessions may be consuming concurrently in the server.
                with self.registry.lock:
                    mediator.record_batch(batch)
                    self._plans_pipelined.inc()
                    self._retries.inc(item.retries)
                    if item.execute_s:
                        self._execute_hist.observe(item.execute_s)
                report.plans_processed += 1
                report.retries += item.retries
                if skipped:
                    report.plans_skipped += 1
                    for source in item.skipped_sources:
                        if source not in report.sources_skipped:
                            report.sources_skipped.append(source)
                    report.answers_partial = True
                elif failed:
                    report.plans_failed += 1
                    report.answers_partial = True
                elif batch.sound:
                    report.sound_plans += 1
                else:
                    report.unsound_plans += 1
                report.answers = len(seen)
                first_answer = bool(new) and report.first_answer_s is None
                if first_answer:
                    # stop() leaves the start instant in place, so the
                    # final elapsed_s keeps measuring from the same base.
                    report.first_answer_s = watch.stop()
                if journal.enabled:
                    rank = item.ordered.rank
                    if skipped:
                        journal.emit(
                            "plan.skipped",
                            rank=rank,
                            sources=list(item.skipped_sources),
                        )
                    elif failed:
                        journal.emit(
                            "plan.failed",
                            rank=rank,
                            error=type(item.error).__name__,
                        )
                    elif not batch.sound:
                        journal.emit("plan.unsound", rank=rank)
                    else:
                        journal.emit(
                            "plan.executed",
                            rank=rank,
                            answers=len(item.answers),
                            new_answers=len(new),
                            execute_s=item.execute_s,
                        )
                        if new:
                            elapsed = watch.stop()
                            if first_answer:
                                journal.emit(
                                    "answer.first",
                                    rank=rank,
                                    elapsed_s=report.first_answer_s,
                                )
                            journal.emit(
                                "answer.progress",
                                rank=rank,
                                answers=len(seen),
                                elapsed_s=elapsed,
                            )
                yield batch
                next_rank += 1
                if (
                    policy.first_k_answers is not None
                    and len(seen) >= policy.first_k_answers
                ):
                    report.satisfied = True
                    return
        finally:
            run.stop.set()
            # Unblock a producer stuck on a full queue, then collect
            # the threads; daemon flags are only a last resort.
            while producer.is_alive():
                try:
                    while True:
                        work_q.get_nowait()
                except Empty:
                    pass
                producer.join(timeout=_TICK_S)
            for worker in workers:
                worker.join(timeout=5 * _TICK_S)
            if adopted_tracer:
                orderer.tracer = NOOP_TRACER
            if self.tracer.enabled:
                # Workers have quiesced; their private spans fold into
                # the session tracer so ``--trace`` reports see them.
                for worker_tracer in worker_tracers:
                    if len(worker_tracer):
                        self.tracer.merge(worker_tracer)
            if resilience is not None:
                report.breaker_states = resilience.breaker_states()
            report.elapsed_s = watch.stop()
            report.answers = len(seen)

    def run(
        self,
        query: ConjunctiveQuery,
        utility: UtilityMeasure,
        *,
        orderer: Optional[PlanOrderer] = None,
        policy: Optional[RequestPolicy] = None,
        request_id: str = "",
        adaptive: bool = False,
    ) -> tuple[list[AnswerBatch], SessionReport]:
        """Collect the whole stream; returns (batches, report)."""
        batches = list(
            self.stream(
                query, utility,
                orderer=orderer, policy=policy, request_id=request_id,
                adaptive=adaptive,
            )
        )
        report = self.last_report
        if report is None:
            raise InternalError("stream() finished without leaving a report")
        return batches, report

"""Named service workloads: catalog + facts + measures + a query.

One resolver shared by everything that boots a service around a
bundled workload — the CLI's ``serve``/``bench-serve``, the perf
baseline, and each cluster worker process (which must be able to
rebuild its service from a picklable name+seed, not from live
objects).
"""

from __future__ import annotations

from typing import Callable

from repro.datalog.query import ConjunctiveQuery
from repro.errors import ServiceError
from repro.sources.catalog import Catalog

__all__ = ["WORKLOAD_NAMES", "service_workload"]

#: Names accepted by :func:`service_workload` (and the CLI flags).
WORKLOAD_NAMES = ("movies", "random-lav")


def service_workload(
    name: str, seed: int
) -> tuple[Catalog, dict, dict[str, Callable], ConjunctiveQuery]:
    """(catalog, source_facts, measure factories, canonical query)."""
    if name == "movies":
        from repro.utility.cost import BindJoinCost, LinearCost
        from repro.workloads.movies import movie_domain

        domain = movie_domain()
        # "failure" is the health-reactive option: a failure-aware
        # bind-join cost that, behind a resilience manager's
        # HealthAwareMeasure, re-ranks plans as observed failure rates
        # move — the measure the adaptive chaos jobs serve with.
        measures: dict[str, Callable] = {
            "linear": LinearCost,
            "failure": lambda: BindJoinCost(failure_aware=True),
        }
        return (
            domain.catalog,
            domain.source_facts,
            measures,
            domain.query,
        )
    if name != "random-lav":
        raise ServiceError(
            f"unknown workload {name!r}; have {', '.join(WORKLOAD_NAMES)}"
        )
    from repro.workloads.random_lav import ordering_scenario

    scenario = ordering_scenario(seed)
    measures = {
        "linear": scenario.linear_cost,
        "bind-join": scenario.bind_join_cost,
        "coverage": scenario.coverage,
        "monetary": scenario.monetary,
    }
    return (
        scenario.scenario.catalog,
        scenario.scenario.source_facts,
        measures,
        scenario.scenario.query,
    )

"""Markdown report generation for experiment runs.

Turns :class:`~repro.experiments.harness.PanelResult` objects into the
tables used by EXPERIMENTS.md, so the measured-vs-paper record can be
regenerated mechanically::

    python -m repro.experiments.report --quick > results.md
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.experiments.figure6 import (
    DEFAULT_SIZES,
    FULL_SIZES,
    PANELS,
    QUICK_SIZES,
    breakdown_spec,
    overlap_sweep_spec,
    query_length_spec,
)
from repro.experiments.harness import PanelResult, run_panel


def panel_markdown(result: PanelResult) -> str:
    """One panel as a GitHub-flavored markdown table."""
    spec = result.spec
    lines = [
        f"### Panel {spec.panel_id}: {spec.title}",
        "",
        f"k = {spec.k}, query length {spec.query_length}, "
        f"overlap rate {spec.overlap_rate}, seeds {list(spec.seeds)}",
        "",
    ]
    header = ["bucket"]
    for algo in spec.algorithms:
        header.append(f"{algo.name} (s / evals)")
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "---|" * len(header))
    for bucket_size in spec.bucket_sizes:
        cells = [str(bucket_size)]
        for algo in spec.algorithms:
            row = result.row(algo.name, bucket_size)
            cells.append(f"{row.seconds:.4f} / {row.plans_evaluated:.0f}")
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    return "\n".join(lines)


def breakdown_markdown(result: PanelResult) -> str:
    """Per-algorithm evaluation/timing breakdown as a markdown table.

    Splits ``plans_evaluated`` into concrete and abstract evaluations
    and shows the evaluations spent before the first plan plus the
    utility-cache hit rate (zero unless the algorithms opted into
    :class:`~repro.observability.caching.CachingUtilityMeasure`).
    """
    spec = result.spec
    lines = [
        f"### Evaluation breakdown — panel {spec.panel_id}: {spec.title}",
        "",
        "| algorithm | bucket | seconds | evals | concrete | abstract "
        "| to 1st plan | cache hits/misses |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for algo in spec.algorithms:
        for bucket_size in spec.bucket_sizes:
            row = result.row(algo.name, bucket_size)
            lines.append(
                f"| {row.algorithm} | {bucket_size} | {row.seconds:.4f} "
                f"| {row.plans_evaluated:.0f} | {row.concrete_evaluations:.0f} "
                f"| {row.abstract_evaluations:.0f} "
                f"| {row.first_plan_evaluations:.0f} "
                f"| {row.cache_hits:.0f}/{row.cache_misses:.0f} |"
            )
    lines.append("")
    return "\n".join(lines)


def summary_markdown(results: Sequence[PanelResult]) -> str:
    """Winner-per-cell summary across panels."""
    lines = ["## Winners by panel (fastest algorithm per bucket size)", ""]
    lines.append("| panel | " + " | ".join("size " + str(i) for i in range(len(results[0].spec.bucket_sizes))) + " |")
    lines.append("|" + "---|" * (1 + len(results[0].spec.bucket_sizes)))
    for result in results:
        cells = [result.spec.panel_id]
        for bucket_size in result.spec.bucket_sizes:
            best = min(
                (result.row(a.name, bucket_size) for a in result.spec.algorithms),
                key=lambda row: row.seconds,
            )
            cells.append(best.algorithm)
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    return "\n".join(lines)


def build_report(
    panel_ids: Sequence[str],
    bucket_sizes: Sequence[int],
    include_sweeps: bool = False,
) -> str:
    """Run the requested panels and format the full markdown report."""
    sections = ["# Measured results", ""]
    results = []
    for panel_id in panel_ids:
        result = run_panel(PANELS[panel_id], bucket_sizes=bucket_sizes)
        results.append(result)
        sections.append(panel_markdown(result))
    if results:
        sections.append(summary_markdown(results))
        sections.append("## Evaluation breakdown\n")
        # All four algorithms head-to-head on the one measure family
        # where each is applicable, then the per-panel splits.
        sections.append(
            breakdown_markdown(
                run_panel(breakdown_spec(), bucket_sizes=bucket_sizes)
            )
        )
        for result in results:
            sections.append(breakdown_markdown(result))
    if include_sweeps:
        sections.append("## Sweeps\n")
        for rate in (0.1, 0.3, 0.5, 0.7):
            sections.append(panel_markdown(run_panel(overlap_sweep_spec(rate))))
        for length in (1, 2, 3, 4):
            sections.append(panel_markdown(run_panel(query_length_spec(length))))
    return "\n".join(sections)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--panel", nargs="*", default=sorted(PANELS))
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--sweeps", action="store_true")
    args = parser.parse_args(argv)
    sizes = DEFAULT_SIZES
    if args.quick:
        sizes = QUICK_SIZES
    if args.full:
        sizes = FULL_SIZES
    print(build_report(args.panel, sizes, include_sweeps=args.sweeps))
    return 0


if __name__ == "__main__":
    sys.exit(main())

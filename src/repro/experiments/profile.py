"""The perf-baseline harness behind ``repro profile``.

Runs the repository's hot paths headlessly — no pytest, no sockets
unless asked — and produces one JSON document (``BENCH_PR5.json`` in
CI) that later runs diff against:

* **ordering** — plans-per-second of the Greedy and PI orderers on
  the camera domain (the ``bench_greedy`` cell);
* **overhead** — the cost of the observability hooks on the mediator
  loop: the hooked ``Mediator.answer`` with journalling *off* (the
  default everyone pays) and *on*, and with tracing on, each as a
  ratio over a hand-inlined control loop with no journal hooks at
  all.  The ``journal_off_ratio`` is the number CI bounds (≤ 1.05):
  disabled instrumentation must stay within noise of free;
* **service** — time-to-first-answer and total latency percentiles of
  the in-process :class:`~repro.service.server.QueryService` under a
  concurrent query mix;
* **deterministic** — a timing-free fingerprint of the same workload
  (answer counts, journal event counts, an answer checksum), byte-
  reproducible under a fixed seed, so a diff separates "got slower"
  from "computes something else now".

Rounds are interleaved (control, hooked, control, ...) and medians
reported, which keeps the ratios stable on noisy CI machines.  This
module computes and returns; the CLI does the printing.
"""

from __future__ import annotations

import hashlib
import statistics
import tracemalloc
from typing import Callable, Optional

from repro.datalog.parser import parse_query
from repro.execution.mediator import AnswerBatch, Mediator
from repro.resilience.chaos import ChaosBackend, ChaosProfile, FaultProfile
from repro.resilience.manager import ResilienceManager
from repro.observability.journal import EventJournal
from repro.observability.tracing import Stopwatch, Tracer
from repro.ordering.anyk import AnyKOrderer
from repro.ordering.bruteforce import PIOrderer
from repro.ordering.greedy import GreedyOrderer
from repro.ordering.idrips import IDripsOrderer
from repro.service.loadgen import build_query_mix, percentile
from repro.service.policy import RequestPolicy, RetryPolicy
from repro.service.server import QueryRequest, QueryService, ServiceConfig
from repro.utility.cost import BindJoinCost, LinearCost
from repro.workloads.cameras import camera_domain
from repro.workloads.movies import movie_domain
from repro.workloads.synthetic import SyntheticParams, generate_domain

__all__ = [
    "run_profile",
    "check_profile",
    "run_anyk_profile",
    "check_anyk_profile",
    "run_cluster_profile",
    "check_cluster_profile",
    "run_adaptive_profile",
    "check_adaptive_profile",
    "adaptive_chaos_profile",
    "adaptive_scenario",
    "adaptive_trial",
    "adaptive_stream_digest",
    "BASELINE_SCHEMA_VERSION",
]

#: Bump when the document layout changes incompatibly.
BASELINE_SCHEMA_VERSION = 1

#: CI bound: hooked-but-disabled journalling may cost at most this
#: fraction over the no-hooks control loop (see ``check_profile``).
MAX_JOURNAL_OFF_OVERHEAD = 0.05

#: Bucket sizes for the AnyK first-plan baseline: 22^3 ≈ 10^4,
#: 47^3 ≈ 10^5 and 100^3 = 10^6 plans at query length 3.
ANYK_BUCKET_SIZES = (22, 47, 100)
ANYK_QUICK_BUCKET_SIZES = (12, 22)

#: CI bound: AnyK's time-to-first-plan must be at most 1/10th of
#: iDrips' on the gate space (see ``check_anyk_profile``).
MIN_ANYK_SPEEDUP = 10.0

#: The gate applies to the smallest measured space of at least this
#: many plans (the "10^5-plan space" of the acceptance criteria).
ANYK_GATE_MIN_SPACE = 100_000

#: Cluster scale-out arms measured by ``run_cluster_profile`` (worker
#: counts beyond the single-process baseline) and the CI bounds on
#: aggregate-throughput scaling for each arm.
CLUSTER_WORKER_COUNTS = (2, 4)
MIN_CLUSTER_SCALING = {2: 1.6, 4: 3.0}

#: The adaptive-vs-fixed baseline (``BENCH_PR9.json``) runs on the
#: random-LAV scenario at this seed: a 16-plan space whose statically
#: best-ranked prefix is dominated by one source, so an outage on it
#: strands a fixed order behind doomed plans while the adaptive
#: orderer routes around after the first failure.
ADAPTIVE_SCENARIO_SEED = 3

#: The source every top-ranked plan of that scenario touches.
ADAPTIVE_DOOMED_SOURCE = "src0"

#: Injected per-attempt stall on the doomed source: each access hangs
#: this long and then fails — a timing-out outage, the worst case for
#: an order that ranked the source's plans on top.
ADAPTIVE_CHAOS_LATENCY_S = 0.02

#: CI bound: the adaptive arm's time-to-first-answer p90 must be at
#: most this fraction of the fixed-order arm's under the outage chaos.
MAX_ADAPTIVE_TTFA_RATIO = 0.8

#: The cluster benchmark multiplies the bundled ``slow`` chaos
#: profile's per-source latency by this factor (10 ms -> 100 ms).  The
#: benchmark host has one CPU core, so CPU-bound serving cannot scale
#: with processes at all; what scale-out buys is *capacity* — each
#: worker admits ``max_concurrent`` requests, and with sleep-bound
#: sources N workers overlap N times as many source waits.  The
#: scaling numbers are honest for I/O-bound mediation (the paper's
#: setting: remote sources dominated by network latency) and say
#: nothing about CPU-bound ordering, which ``run_profile`` measures.
CLUSTER_CHAOS_SCALE = 10.0


def _median_of(fn: Callable[[], object], rounds: int) -> float:
    times = []
    for _ in range(rounds):
        with Stopwatch() as watch:
            fn()
        times.append(watch.elapsed)
    return statistics.median(times)


# -- ordering throughput ----------------------------------------------------------


def _ordering_section(seed: int, rounds: int, k: int) -> dict:
    domain = camera_domain(seed)
    section: dict[str, object] = {"k": k, "space_size": domain.space.size}
    for name, factory in (
        ("greedy", GreedyOrderer),
        ("pi", PIOrderer),
        ("anyk", AnyKOrderer),
    ):
        def once() -> None:
            factory(LinearCost()).order_list(domain.space, k)

        median_s = _median_of(once, rounds)
        section[name] = {
            "median_s": median_s,
            "plans_per_s": k / median_s if median_s > 0 else 0.0,
        }
    return section


# -- AnyK first-plan delay vs iDrips ----------------------------------------------


def _first_plan_memory(make_first_plan: Callable[[], None]) -> float:
    """Peak traced allocation (KiB) over one first-plan pull.

    Measured in a separate run from the timings: tracemalloc slows
    allocation severely, so timing under it would distort the delay
    medians (for both algorithms, but unevenly — iDrips allocates the
    whole product space, AnyK does not).
    """
    tracemalloc.start()
    try:
        make_first_plan()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 1024.0


def _anyk_space_section(bucket_size: int, seed: int, rounds: int) -> dict:
    domain = generate_domain(
        SyntheticParams(query_length=3, bucket_size=bucket_size, seed=seed)
    )
    space = domain.space
    section: dict[str, object] = {
        "bucket_size": bucket_size,
        "query_length": 3,
        "space_size": space.size,
    }
    for name, factory in (("anyk", AnyKOrderer), ("idrips", IDripsOrderer)):
        def first_plan(make=factory) -> None:
            generator = make(LinearCost()).order(space, 1)
            next(generator)
            generator.close()

        section[name] = {
            "first_plan_median_s": _median_of(first_plan, rounds),
            "first_plan_peak_kib": _first_plan_memory(first_plan),
        }
    anyk_s = section["anyk"]["first_plan_median_s"]  # type: ignore[index]
    idrips_s = section["idrips"]["first_plan_median_s"]  # type: ignore[index]
    section["first_plan_speedup"] = idrips_s / anyk_s if anyk_s > 0 else 0.0
    return section


def run_anyk_profile(
    *,
    seed: int = 0,
    quick: bool = False,
    rounds: Optional[int] = None,
    timestamp: Optional[str] = None,
) -> dict:
    """The AnyK-vs-iDrips first-plan baseline (``BENCH_PR6.json``).

    For each generated plan space (10^4–10^6 plans at query length 3,
    linear cost) this measures the median time-to-first-plan of both
    orderers plus their tracemalloc peak over the same pull.  iDrips
    materializes and abstracts the whole product space before its
    first emission; AnyK seeds one lattice root per space, so both the
    delay and the peak grow with the space for iDrips but not AnyK.
    """
    rounds = rounds if rounds is not None else (2 if quick else 5)
    sizes = ANYK_QUICK_BUCKET_SIZES if quick else ANYK_BUCKET_SIZES
    payload: dict[str, object] = {
        "schema": BASELINE_SCHEMA_VERSION,
        "kind": "anyk",
        "seed": seed,
        "quick": quick,
        "rounds": rounds,
        "measure": "linear",
        "gate": {
            "min_speedup": MIN_ANYK_SPEEDUP,
            "min_space_size": ANYK_GATE_MIN_SPACE,
        },
        "spaces": [
            _anyk_space_section(bucket_size, seed, rounds)
            for bucket_size in sizes
        ],
    }
    if timestamp is not None:
        payload["timestamp"] = timestamp
    return payload


def check_anyk_profile(
    payload: dict,
    *,
    min_speedup: float = MIN_ANYK_SPEEDUP,
    min_space: int = ANYK_GATE_MIN_SPACE,
) -> list[str]:
    """Regression findings in an AnyK baseline; empty means pass.

    The CI gate from the acceptance criteria: on the smallest measured
    space of at least ``min_space`` plans, AnyK's first-plan delay must
    be at most ``1/min_speedup`` of iDrips'.
    """
    spaces = payload.get("spaces")
    if not isinstance(spaces, list) or not spaces:
        return ["anyk baseline document has no spaces section"]
    eligible = [
        section
        for section in spaces
        if isinstance(section, dict)
        and isinstance(section.get("space_size"), int)
        and section["space_size"] >= min_space
    ]
    if not eligible:
        return [
            f"no measured space has >= {min_space} plans "
            "(rerun without --quick to produce the gate space)"
        ]
    gate_section = min(eligible, key=lambda section: section["space_size"])
    speedup = gate_section.get("first_plan_speedup")
    if not isinstance(speedup, (int, float)):
        return ["gate space section has no first_plan_speedup"]
    problems: list[str] = []
    if speedup < min_speedup:
        problems.append(
            f"AnyK first-plan speedup {speedup:.1f}x over iDrips on the "
            f"{gate_section['space_size']}-plan space is below the "
            f"{min_speedup:.0f}x gate"
        )
    return problems


# -- cluster scale-out ------------------------------------------------------------


def stratified_cluster_mix(
    catalog,
    size: int,
    worker_counts: tuple[int, ...],
    seed: int,
) -> list[str]:
    """A query mix balanced across every arm's consistent-hash ring.

    The router shards by query text, so a random mix hands each shard
    a random *share* of the load — and the slowest shard's share caps
    measurable scale-out (a shard owning 3/8 of the requests bounds a
    4-worker run at 2.67x no matter how well the cluster works).  The
    ring is deterministic (SHA-256, no process salt), so the harness
    can stratify offline with the router's own placement function:
    pick queries until every shard of every measured ring owns an
    equal count.  Uniform per-query *work* matters too — count balance
    means nothing if one shard's queries are 9x the plans — so only
    queries with two subgoals and exactly three rewritings enter the
    mix.  The 2-ring tolerates a +1 share (a perfectly even split for
    both rings at once is not always satisfiable from a finite pool);
    the residual imbalance is reported, not hidden.
    """
    pool: list[str] = []
    for offset in range(8):
        pool.extend(build_query_mix(catalog, 64, seed=seed + offset))
    unique = list(dict.fromkeys(pool))
    from repro.cluster.hashing import ConsistentHashRing
    from repro.reformulation.buckets import build_buckets

    rings = {n: ConsistentHashRing(range(n)) for n in worker_counts}
    quota = {n: size // n + (1 if n == 2 else 0) for n in worker_counts}
    counts: dict[int, dict[int, int]] = {n: {} for n in worker_counts}
    picked: list[str] = []
    for text in unique:
        if len(picked) == size:
            break
        parsed = parse_query(text)
        if len(parsed.body) != 2:
            continue
        if build_buckets(parsed, catalog).size != 3:
            continue
        owners = {n: rings[n].shard_for(text) for n in worker_counts}
        if all(
            counts[n].get(owners[n], 0) < quota[n] for n in worker_counts
        ):
            picked.append(text)
            for n in worker_counts:
                counts[n][owners[n]] = counts[n].get(owners[n], 0) + 1
    if len(picked) < size:
        raise RuntimeError(
            f"could only stratify {len(picked)}/{size} queries over "
            f"rings {worker_counts} (seed {seed})"
        )
    return picked


def _cluster_arm(host: str, port: int, mix: list[str], *,
                 requests: int, concurrency: int) -> dict:
    from repro.service.loadgen import run_load

    report = run_load(
        host, port, mix,
        requests=requests, concurrency=concurrency, timeout_s=240.0,
    )
    return report.as_dict()


def run_cluster_profile(
    *,
    seed: int = 0,
    quick: bool = False,
    timestamp: Optional[str] = None,
) -> dict:
    """The cluster scale-out baseline (``BENCH_PR7.json``).

    Three arms over the same stratified query mix and the same
    sleep-bound chaos workload (``slow`` x ``CLUSTER_CHAOS_SCALE``):

    * ``single`` — one worker-built :class:`QueryService` served
      directly over TCP (literally a 1-shard worker, no router);
    * ``workers_N`` — a full :class:`~repro.cluster.runtime.Cluster`
      (router + N spawned worker processes) for each N in
      ``CLUSTER_WORKER_COUNTS``.

    ``scaling`` holds each cluster arm's aggregate throughput over the
    single-process baseline; ``check_cluster_profile`` gates those
    ratios.  Quick mode measures only the 2-worker arm with a smaller
    budget (CI's smoke gate).
    """
    from repro.cluster.runtime import Cluster, worker_specs
    from repro.cluster.spec import ClusterConfig, WorkerSpec
    from repro.cluster.worker import build_worker_service
    from repro.resilience.chaos import bundled_profile
    from repro.service.frontend import start_server
    from repro.service.workloads import service_workload

    requests = 48 if quick else 96
    concurrency = 16 if quick else 32
    per_worker = 4
    worker_counts = (2,) if quick else CLUSTER_WORKER_COUNTS
    backlog = requests + concurrency

    catalog, _facts, _measures, _query = service_workload("movies", seed)
    # Stratify over every ring the full profile measures, even in
    # quick mode, so quick and full runs replay the identical mix.
    mix = stratified_cluster_mix(catalog, 16, CLUSTER_WORKER_COUNTS, seed)
    chaos = (
        bundled_profile("slow")
        .with_scaled_latency(CLUSTER_CHAOS_SCALE)
        .as_dict()
    )

    single_spec = WorkerSpec(
        shard=0, workload="movies", seed=seed,
        max_concurrent=per_worker, backlog=backlog,
        chaos=chaos, chaos_seed=seed,
    )
    service = build_worker_service(single_spec)
    server, _thread = start_server(service)
    try:
        arms = {
            "single": _cluster_arm(
                "127.0.0.1", server.port, mix,
                requests=requests, concurrency=concurrency,
            )
        }
    finally:
        server.shutdown()
        server.server_close()
        service.shutdown()

    for n in worker_counts:
        config = ClusterConfig(workers=n, backlog_per_shard=backlog)
        specs = worker_specs(
            config, workload="movies", seed=seed,
            max_concurrent=per_worker, backlog=backlog,
            chaos=chaos, chaos_seed=seed,
        )
        with Cluster(specs, config) as cluster:
            arms[f"workers_{n}"] = _cluster_arm(
                "127.0.0.1", cluster.port, mix,
                requests=requests, concurrency=concurrency,
            )

    base = arms["single"]["throughput_rps"]
    scaling = {
        f"workers_{n}": (
            arms[f"workers_{n}"]["throughput_rps"] / base if base else 0.0
        )
        for n in worker_counts
    }
    payload: dict[str, object] = {
        "schema": BASELINE_SCHEMA_VERSION,
        "kind": "cluster",
        "seed": seed,
        "quick": quick,
        "workload": "movies",
        "chaos": {"profile": "slow", "latency_scale": CLUSTER_CHAOS_SCALE},
        "load": {
            "requests": requests,
            "concurrency": concurrency,
            "queries": len(mix),
            "max_concurrent_per_worker": per_worker,
        },
        "gate": {
            f"workers_{n}": MIN_CLUSTER_SCALING[n] for n in worker_counts
        },
        "arms": arms,
        "scaling": scaling,
    }
    if timestamp is not None:
        payload["timestamp"] = timestamp
    return payload


def check_cluster_profile(
    payload: dict,
    *,
    min_scaling: Optional[dict[int, float]] = None,
) -> list[str]:
    """Regression findings in a cluster baseline; empty means pass.

    Each measured arm must (a) finish its whole request budget without
    protocol errors in every arm, and (b) clear its scaling bound
    (``MIN_CLUSTER_SCALING``: 1.6x at 2 workers, 3x at 4).  An absent
    arm (quick mode has no 4-worker run) is not a failure.
    """
    bounds = min_scaling if min_scaling is not None else MIN_CLUSTER_SCALING
    arms = payload.get("arms")
    scaling = payload.get("scaling")
    if not isinstance(arms, dict) or "single" not in arms:
        return ["cluster baseline document has no single-process arm"]
    if not isinstance(scaling, dict) or not scaling:
        return ["cluster baseline document has no scaling section"]
    problems: list[str] = []
    for name, arm in sorted(arms.items()):
        if not isinstance(arm, dict):
            problems.append(f"arm {name} is not a section")
            continue
        errors = arm.get("errors")
        if errors:
            problems.append(f"arm {name} saw {errors} protocol errors")
        if arm.get("completed") != arm.get("sent"):
            problems.append(
                f"arm {name} completed {arm.get('completed')} of "
                f"{arm.get('sent')} requests"
            )
    for n, bound in sorted(bounds.items()):
        key = f"workers_{n}"
        if key not in scaling:
            continue
        ratio = scaling[key]
        if not isinstance(ratio, (int, float)):
            problems.append(f"scaling entry {key} is not a number")
        elif ratio < bound:
            problems.append(
                f"aggregate throughput at {n} workers scaled only "
                f"{ratio:.2f}x over single-process (gate {bound:.1f}x)"
            )
    return problems


# -- adaptive re-ordering vs fixed order ------------------------------------------

#: Retry budget for the adaptive trials: two fast attempts, so each
#: doomed plan costs exactly two injected stalls plus one backoff.
#: Jitter stays off — the trials are meant to replay byte-identically.
ADAPTIVE_RETRY = RetryPolicy(max_attempts=2, base_s=0.005, cap_s=0.01)


def adaptive_chaos_profile() -> ChaosProfile:
    """The seeded latency/outage chaos of the adaptive baseline.

    Every access to the doomed source stalls for
    ``ADAPTIVE_CHAOS_LATENCY_S`` and then fails with a retryable
    error, so a plan over it burns its whole retry budget in wall
    clock before gracefully degrading to the next plan.
    """
    return ChaosProfile(
        name="head-outage",
        faults={
            ADAPTIVE_DOOMED_SOURCE: FaultProfile(
                transient_prob=1.0, latency_s=ADAPTIVE_CHAOS_LATENCY_S
            )
        },
    )


def adaptive_scenario():
    """The random-LAV scenario both arms of the baseline run on."""
    from repro.workloads.random_lav import ordering_scenario

    return ordering_scenario(ADAPTIVE_SCENARIO_SEED)


def _adaptive_measure_factory(scenario):
    def factory() -> BindJoinCost:
        return BindJoinCost(
            access_overhead=1.0,
            domain_sizes=scenario.domain_sizes,
            uniform_transfer=True,
            failure_aware=True,
        )

    return factory


def _adaptive_service(
    scenario, *, adaptivity: str, chaos_seed: int, chaos: bool,
    journal: Optional[EventJournal] = None,
) -> QueryService:
    # queue_depth=1 / executor_workers=1 keep the producer at most a
    # couple of plans ahead of execution, so mid-stream health signals
    # can still affect plans that were not yet emitted.  Breakers are
    # off in *both* arms: the board would skip every doomed plan after
    # its threshold in both, drowning the ordering-level effect this
    # baseline isolates (bench_resilience measures the breaker path).
    backend = None
    if chaos:
        backend = ChaosBackend(adaptive_chaos_profile(), seed=chaos_seed)
    return QueryService(
        scenario.scenario.catalog,
        scenario.scenario.source_facts,
        measures={"failure": _adaptive_measure_factory(scenario)},
        config=ServiceConfig(
            default_policy=RequestPolicy(retry=ADAPTIVE_RETRY),
            default_measure="failure",
            adaptivity=adaptivity,
            queue_depth=1,
            executor_workers=1,
        ),
        backend=backend,
        resilience=ResilienceManager(min_observations=1, breakers=False),
        journal=journal,
    )


def adaptive_trial(
    scenario=None, *, adaptivity: str, chaos_seed: int = 0, chaos: bool = True
) -> dict:
    """One cold-start request under the outage chaos; outcome facts.

    Cold start is the point: both arms begin with an empty health
    tracker and therefore the *identical* static ranking, so any
    time-to-first-answer gap is attributable to mid-stream re-ordering
    alone.
    """
    scenario = scenario if scenario is not None else adaptive_scenario()
    journal = EventJournal()
    service = _adaptive_service(
        scenario, adaptivity=adaptivity, chaos_seed=chaos_seed,
        chaos=chaos, journal=journal,
    )
    try:
        result = service.execute(
            QueryRequest(scenario.scenario.query, request_id="trial")
        )
        report = result.report
        journal.validate()
        return {
            "status": result.status,
            "answers": len(result.answers),
            "ttfa_s": report.first_answer_s if report is not None else None,
            "plans_failed": report.plans_failed if report is not None else 0,
            "reorders": len(journal.events(event="plan.reordered")),
        }
    finally:
        service.shutdown()


def adaptive_stream_digest(scenario=None, *, adaptivity: str) -> dict:
    """Fingerprint of one healthy (chaos-free) request's batch stream.

    The healthy-path identity guarantee, as a checkable fact: with no
    failures the epoch never moves, so the adaptive stream must be
    byte-identical to the fixed one — same plans, utilities, ranks and
    soundness verdicts, hence equal digests.
    """
    scenario = scenario if scenario is not None else adaptive_scenario()
    service = _adaptive_service(
        scenario, adaptivity=adaptivity, chaos_seed=0, chaos=False
    )
    try:
        result = service.execute(
            QueryRequest(scenario.scenario.query, request_id="healthy")
        )
        stream = [
            (batch.rank, batch.plan.key, batch.utility, batch.sound)
            for batch in result.batches
        ]
        return {
            "status": result.status,
            "batches": len(stream),
            "stream_sha256": hashlib.sha256(
                repr(stream).encode("utf-8")
            ).hexdigest(),
        }
    finally:
        service.shutdown()


def run_adaptive_profile(
    *,
    seed: int = 0,
    quick: bool = False,
    trials: Optional[int] = None,
    timestamp: Optional[str] = None,
) -> dict:
    """The adaptive-vs-fixed ordering baseline (``BENCH_PR9.json``).

    Two arms execute the same cold-start request under the same seeded
    latency/outage chaos, differing only in the ``adaptivity`` knob.
    Each trial is a fresh service (empty tracker, closed breakers), so
    the arms share their static ranking and the measured gap is the
    value of the mid-stream feedback loop.  A chaos-free request per
    arm fingerprints the healthy streams; they must be identical.
    """
    trials = trials if trials is not None else (4 if quick else 10)
    scenario = adaptive_scenario()
    arms: dict[str, dict] = {}
    for arm, adaptivity in (("fixed", "off"), ("adaptive", "on")):
        runs = [
            adaptive_trial(
                scenario, adaptivity=adaptivity, chaos_seed=seed + index
            )
            for index in range(trials)
        ]
        ttfas = [run["ttfa_s"] for run in runs]
        arms[arm] = {
            "trials": trials,
            "ttfa_s": ttfas,
            "ttfa_p50_s": percentile(ttfas, 0.50),
            "ttfa_p90_s": percentile(ttfas, 0.90),
            "reorders": [run["reorders"] for run in runs],
            "statuses": [run["status"] for run in runs],
            "answers": [run["answers"] for run in runs],
            "plans_failed": sum(run["plans_failed"] for run in runs),
        }
    fixed_p90 = arms["fixed"]["ttfa_p90_s"]
    ratio = (
        arms["adaptive"]["ttfa_p90_s"] / fixed_p90 if fixed_p90 else 0.0
    )
    healthy = {
        arm: adaptive_stream_digest(scenario, adaptivity=adaptivity)
        for arm, adaptivity in (("fixed", "off"), ("adaptive", "on"))
    }
    payload: dict[str, object] = {
        "schema": BASELINE_SCHEMA_VERSION,
        "kind": "adaptive",
        "seed": seed,
        "quick": quick,
        "scenario": {
            "workload": "random-lav",
            "seed": ADAPTIVE_SCENARIO_SEED,
            "space_size": scenario.space.size,
            "doomed_source": ADAPTIVE_DOOMED_SOURCE,
        },
        "chaos": adaptive_chaos_profile().as_dict(),
        "retry": {
            "max_attempts": ADAPTIVE_RETRY.max_attempts,
            "base_s": ADAPTIVE_RETRY.base_s,
            "cap_s": ADAPTIVE_RETRY.cap_s,
        },
        "gate": {"max_ttfa_ratio": MAX_ADAPTIVE_TTFA_RATIO},
        "arms": arms,
        "ttfa_p90_ratio": ratio,
        "healthy": {
            **healthy,
            "identical": (
                healthy["fixed"]["stream_sha256"]
                == healthy["adaptive"]["stream_sha256"]
            ),
        },
    }
    if timestamp is not None:
        payload["timestamp"] = timestamp
    return payload


def check_adaptive_profile(
    payload: dict, *, max_ratio: float = MAX_ADAPTIVE_TTFA_RATIO
) -> list[str]:
    """Regression findings in an adaptive baseline; empty means pass.

    The CI gate from the acceptance criteria: adaptive TTFA p90 at
    most ``max_ratio`` of fixed-order under the outage chaos; every
    trial completes ``ok``; the fixed arm never re-orders while every
    adaptive trial re-orders at least once; and the healthy streams
    are identical.
    """
    arms = payload.get("arms")
    if not isinstance(arms, dict) or not {"fixed", "adaptive"} <= set(arms):
        return ["adaptive baseline document has no fixed/adaptive arms"]
    problems: list[str] = []
    for name in ("fixed", "adaptive"):
        statuses = arms[name].get("statuses") or []
        bad = [status for status in statuses if status != "ok"]
        if bad:
            problems.append(
                f"{name} arm saw non-ok statuses under chaos: {bad}"
            )
    fixed_reorders = arms["fixed"].get("reorders") or []
    if any(fixed_reorders):
        problems.append(
            f"the fixed arm re-ordered mid-stream: {fixed_reorders}"
        )
    adaptive_reorders = arms["adaptive"].get("reorders")
    if not adaptive_reorders or not all(
        count >= 1 for count in adaptive_reorders
    ):
        problems.append(
            "an adaptive trial never re-ordered under the outage chaos: "
            f"{adaptive_reorders}"
        )
    ratio = payload.get("ttfa_p90_ratio")
    if not isinstance(ratio, (int, float)):
        problems.append("adaptive baseline document has no ttfa_p90_ratio")
    elif ratio > max_ratio:
        problems.append(
            f"adaptive TTFA p90 is {ratio:.2f}x fixed-order "
            f"(gate {max_ratio:.2f}x): "
            f"{arms['adaptive'].get('ttfa_p90_s')}s vs "
            f"{arms['fixed'].get('ttfa_p90_s')}s"
        )
    healthy = payload.get("healthy")
    if not isinstance(healthy, dict) or healthy.get("identical") is not True:
        problems.append(
            "healthy streams differ between adaptive and fixed arms"
        )
    return problems


# -- observability-hook overhead --------------------------------------------------


def _drain_hooked(mediator: Mediator, query, utility) -> int:
    """The real mediator loop (journal hooks present on every branch)."""
    count = 0
    orderer = GreedyOrderer(utility)
    for _batch in mediator.answer(query, utility, orderer=orderer):
        count += 1
    return count


def _drain_control(mediator: Mediator, query, utility) -> int:
    """``Mediator.answer``'s body with the journal hooks deleted.

    This is the pre-instrumentation loop: same stages (reformulate,
    order, soundness, execute, record), same per-plan allocations, no
    ``journal.enabled`` checks.  Kept in lockstep with
    ``Mediator.answer`` by the equivalence assertion in
    ``run_profile`` (both drains must produce identical batch counts
    and answers).
    """
    orderer = GreedyOrderer(utility)
    space = mediator.reformulate(query)
    soundness: dict[tuple[str, ...], bool] = {}

    def on_emit(plan) -> bool:
        return soundness[plan.key]

    seen: set[tuple[object, ...]] = set()
    resilience = mediator.resilience
    count = 0
    for ordered in orderer.order(space, space.size, on_emit=on_emit):
        executable = mediator.check_soundness(query, ordered.plan)
        sound = executable is not None
        soundness[ordered.plan.key] = sound
        if not sound:
            batch = AnswerBatch(
                ordered.rank, ordered.plan, ordered.utility,
                False, frozenset(), frozenset(),
            )
            mediator.record_batch(batch)
            count += 1
            continue
        # The resilience conditionals predate the journal and stay in
        # the control loop; only the journal hooks are deleted.
        blocked = (
            resilience.admit(ordered.plan) if resilience is not None else ()
        )
        if blocked:
            batch = AnswerBatch(
                ordered.rank, ordered.plan, ordered.utility,
                True, frozenset(), frozenset(), skipped=True,
            )
            mediator.record_batch(batch)
            count += 1
            continue
        sources = (
            ResilienceManager.sources_of(ordered.plan)
            if resilience is not None
            else ()
        )
        with Stopwatch() as exec_watch:
            answers = mediator.execute_query(executable)
        if resilience is not None:
            resilience.record_success(sources, exec_watch.elapsed)
        new = frozenset(answers - seen)
        seen.update(answers)
        batch = AnswerBatch(
            ordered.rank, ordered.plan, ordered.utility, True, answers, new
        )
        mediator.record_batch(batch)
        count += 1
    return count


def _overhead_section(rounds: int, repeats: int) -> dict:
    """Interleaved medians of the control loop vs the hooked variants."""
    domain = movie_domain()
    utility = LinearCost()

    plain = Mediator(domain.catalog, domain.source_facts)
    journal_on = Mediator(
        domain.catalog, domain.source_facts, journal=EventJournal()
    )
    tracing_on = Mediator(
        domain.catalog, domain.source_facts, tracer=Tracer(enabled=True)
    )

    # The control loop must be the same computation or the ratio is
    # meaningless; equal batch counts over the full drain check that.
    hooked_batches = _drain_hooked(plain, domain.query, utility)
    control_batches = _drain_control(plain, domain.query, utility)

    variants: dict[str, Callable[[], object]] = {
        "control": lambda: _drain_control(plain, domain.query, utility),
        "journal_off": lambda: _drain_hooked(plain, domain.query, utility),
        "journal_on": lambda: _drain_hooked(journal_on, domain.query, utility),
        "tracing_on": lambda: _drain_hooked(tracing_on, domain.query, utility),
    }
    samples: dict[str, list[float]] = {name: [] for name in variants}
    for _round in range(rounds):
        journal_on.journal.reset()  # keep the buffer from growing round over round
        for name, fn in variants.items():
            with Stopwatch() as watch:
                for _ in range(repeats):
                    fn()
            samples[name].append(watch.elapsed / repeats)
    medians = {name: statistics.median(times) for name, times in samples.items()}
    control = medians["control"]
    section: dict[str, object] = {
        "rounds": rounds,
        "repeats": repeats,
        "batches": hooked_batches,
        "control_batches": control_batches,
        "control_median_s": control,
    }
    for name in ("journal_off", "journal_on", "tracing_on"):
        section[f"{name}_median_s"] = medians[name]
        section[f"{name}_ratio"] = (
            medians[name] / control if control > 0 else 1.0
        )
    return section


# -- service latency under load ---------------------------------------------------


def _service_section(seed: int, requests: int, concurrency: int) -> dict:
    domain = movie_domain()
    journal = EventJournal()
    service = QueryService(
        domain.catalog,
        domain.source_facts,
        measures={"linear": LinearCost},
        config=ServiceConfig(max_concurrent=concurrency, backlog=requests + 1),
        journal=journal,
    )
    mix = build_query_mix(
        domain.catalog, 6, seed=seed, include=domain.query
    )
    queries = [parse_query(text) for text in mix]
    with service:
        with Stopwatch() as watch:
            pendings = [
                service.submit(
                    QueryRequest(
                        queries[index % len(queries)],
                        request_id=f"profile-{index}",
                    )
                )
                for index in range(requests)
            ]
            results = [pending.wait(timeout=120.0) for pending in pendings]
    first = [
        result.report.first_answer_s
        for result in results
        if result.report is not None
        and result.report.first_answer_s is not None
    ]
    total = [
        result.report.elapsed_s
        for result in results
        if result.report is not None
    ]
    completed = sum(1 for result in results if result.ok)
    journal.validate()
    return {
        "requests": requests,
        "concurrency": concurrency,
        "completed": completed,
        "duration_s": watch.elapsed,
        "throughput_rps": completed / watch.elapsed if watch.elapsed else 0.0,
        "first_answer": {
            "count": len(first),
            "p50_s": percentile(first, 0.50),
            "p90_s": percentile(first, 0.90),
            "p99_s": percentile(first, 0.99),
        },
        "total": {
            "count": len(total),
            "p50_s": percentile(total, 0.50),
            "p90_s": percentile(total, 0.90),
            "p99_s": percentile(total, 0.99),
        },
        "journal_events": len(journal),
    }


# -- deterministic fingerprint ----------------------------------------------------


def _deterministic_section(seed: int) -> dict:
    """Timing-free facts a fixed seed must always reproduce."""
    domain = movie_domain()
    journal = EventJournal()
    mediator = Mediator(domain.catalog, domain.source_facts, journal=journal)
    utility = LinearCost()
    batches = list(
        mediator.answer(
            domain.query, utility,
            orderer=GreedyOrderer(utility), request_id="fingerprint",
        )
    )
    journal.validate()
    answers = sorted(
        {row for batch in batches for row in batch.new_answers}
    )
    digest = hashlib.sha256(repr(answers).encode("utf-8")).hexdigest()
    events_by_type: dict[str, int] = {}
    for record in journal.events():
        events_by_type[record["event"]] = (
            events_by_type.get(record["event"], 0) + 1
        )
    mix = build_query_mix(domain.catalog, 6, seed=seed, include=domain.query)
    mix_digest = hashlib.sha256("\n".join(mix).encode("utf-8")).hexdigest()
    return {
        "plans": len(batches),
        "sound_plans": sum(1 for batch in batches if batch.sound),
        "answers": len(answers),
        "answer_sha256": digest,
        "query_mix_sha256": mix_digest,
        "journal_events": events_by_type,
    }


# -- entry points -----------------------------------------------------------------


def run_profile(
    *,
    seed: int = 0,
    quick: bool = False,
    rounds: Optional[int] = None,
    timestamp: Optional[str] = None,
) -> dict:
    """Run every section and return the baseline document.

    ``quick`` trims rounds and request counts for tests and local
    smoke runs; CI uses the defaults.  ``timestamp`` is caller-
    supplied metadata (the harness itself never reads a clock, so two
    runs of the same build differ only in the timing numbers).
    """
    rounds = rounds if rounds is not None else (3 if quick else 7)
    repeats = 3 if quick else 10
    requests = 8 if quick else 32
    payload: dict[str, object] = {
        "schema": BASELINE_SCHEMA_VERSION,
        "seed": seed,
        "quick": quick,
        "ordering": _ordering_section(
            seed, rounds=rounds, k=10 if quick else 25
        ),
        "overhead": _overhead_section(rounds=rounds, repeats=repeats),
        "service": _service_section(seed, requests=requests, concurrency=4),
        "deterministic": _deterministic_section(seed),
    }
    if timestamp is not None:
        payload["timestamp"] = timestamp
    return payload


def check_profile(
    payload: dict, *, max_overhead: float = MAX_JOURNAL_OFF_OVERHEAD
) -> list[str]:
    """Regression findings in a baseline document; empty means pass.

    The hard CI gate: disabled journal hooks on the mediator loop may
    cost at most ``max_overhead`` (fractional) over the hook-free
    control loop; and the control loop must still be the same
    computation as the hooked one (equal batch counts), otherwise the
    ratio proves nothing.
    """
    problems: list[str] = []
    overhead = payload.get("overhead")
    if not isinstance(overhead, dict):
        return ["baseline document has no overhead section"]
    if overhead.get("batches") != overhead.get("control_batches"):
        problems.append(
            "control loop diverged from Mediator.answer: "
            f"{overhead.get('control_batches')} batches vs "
            f"{overhead.get('batches')} — the overhead ratio is invalid"
        )
    ratio = overhead.get("journal_off_ratio")
    limit = 1.0 + max_overhead
    if not isinstance(ratio, (int, float)):
        problems.append("overhead section has no journal_off_ratio")
    elif ratio > limit:
        problems.append(
            f"journal hooks cost {(ratio - 1.0) * 100:.1f}% with the journal "
            f"disabled (limit {max_overhead * 100:.0f}%): "
            f"{overhead.get('journal_off_median_s')}s vs "
            f"{overhead.get('control_median_s')}s control"
        )
    return problems

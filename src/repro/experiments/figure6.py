"""Panel definitions for every table/figure of the paper's evaluation.

Figure 6 has twelve panels: four utility measures, each at k = 1, 10
and 100, plotting time-to-k-th-plan against bucket size for PI,
iDrips, and (where applicable) Streamer.  The in-text claims
(Streamer's first-iteration evaluation fraction, the overlap-rate and
query-length sweeps) are exposed as separate runners.

Run from the command line::

    python -m repro.experiments.figure6            # default sizes
    python -m repro.experiments.figure6 --quick    # small sizes
    python -m repro.experiments.figure6 --full     # paper-scale sweep
    python -m repro.experiments.figure6 --panel a b c
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Optional, Sequence

from repro.experiments.harness import AlgorithmSpec, PanelResult, PanelSpec, run_panel
from repro.ordering.anyk import AnyKOrderer
from repro.ordering.bruteforce import PIOrderer
from repro.ordering.greedy import GreedyOrderer
from repro.ordering.idrips import IDripsOrderer
from repro.ordering.streamer import StreamerOrderer
from repro.workloads.synthetic import SyntheticDomain

#: Bucket-size sweeps per mode.
QUICK_SIZES = (4, 8, 12)
DEFAULT_SIZES = (4, 8, 12, 16)
FULL_SIZES = (8, 16, 24, 32, 40)


def _pi(measure: Callable[[SyntheticDomain], object]) -> AlgorithmSpec:
    return AlgorithmSpec("PI", lambda d: PIOrderer(measure(d)))


def _idrips(measure: Callable[[SyntheticDomain], object]) -> AlgorithmSpec:
    return AlgorithmSpec("iDrips", lambda d: IDripsOrderer(measure(d)))


def _streamer(measure: Callable[[SyntheticDomain], object]) -> AlgorithmSpec:
    return AlgorithmSpec("Streamer", lambda d: StreamerOrderer(measure(d)))


def _anyk(measure: Callable[[SyntheticDomain], object]) -> AlgorithmSpec:
    # Applicable to every measure: lattice mode when fully monotonic,
    # interval (region-refinement) mode otherwise.
    return AlgorithmSpec("AnyK", lambda d: AnyKOrderer(measure(d)))


def _coverage(domain: SyntheticDomain) -> object:
    return domain.coverage()


def _failure_nocache(domain: SyntheticDomain) -> object:
    return domain.failure_cost(caching=False)


def _failure_cache(domain: SyntheticDomain) -> object:
    return domain.failure_cost(caching=True)


def _monetary_nocache(domain: SyntheticDomain) -> object:
    return domain.monetary(caching=False)


def _monetary_cache(domain: SyntheticDomain) -> object:
    return domain.monetary(caching=True)


def _named(name: str, spec: AlgorithmSpec) -> AlgorithmSpec:
    return AlgorithmSpec(name, spec.build)


def _panel(
    panel_id: str,
    title: str,
    k: int,
    algorithms: tuple[AlgorithmSpec, ...],
) -> PanelSpec:
    return PanelSpec(panel_id, title, k, algorithms)


#: Every Figure 6 panel, keyed a-l as in the paper.
PANELS: dict[str, PanelSpec] = {
    # (a)-(c): plan coverage -- Streamer applicable (diminishing returns).
    "a": _panel("6.a", "plan coverage, 1st plan", 1,
                (_pi(_coverage), _idrips(_coverage), _streamer(_coverage),
                 _anyk(_coverage))),
    "b": _panel("6.b", "plan coverage, 10th plan", 10,
                (_pi(_coverage), _idrips(_coverage), _streamer(_coverage),
                 _anyk(_coverage))),
    "c": _panel("6.c", "plan coverage, 100th plan", 100,
                (_pi(_coverage), _idrips(_coverage), _streamer(_coverage),
                 _anyk(_coverage))),
    # (d)-(f): cost with source failure, no caching -- full independence.
    "d": _panel("6.d", "failure cost (no caching), 1st plan", 1,
                (_pi(_failure_nocache), _idrips(_failure_nocache),
                 _streamer(_failure_nocache), _anyk(_failure_nocache))),
    "e": _panel("6.e", "failure cost (no caching), 10th plan", 10,
                (_pi(_failure_nocache), _idrips(_failure_nocache),
                 _streamer(_failure_nocache), _anyk(_failure_nocache))),
    "f": _panel("6.f", "failure cost (no caching), 100th plan", 100,
                (_pi(_failure_nocache), _idrips(_failure_nocache),
                 _streamer(_failure_nocache), _anyk(_failure_nocache))),
    # (g)-(i): cost with failure + caching -- diminishing returns fails,
    # Streamer is not applicable (paper, Section 6); AnyK falls back to
    # its interval (region-refinement) mode and stays exact.
    "g": _panel("6.g", "failure cost (caching), 1st plan", 1,
                (_pi(_failure_cache), _idrips(_failure_cache),
                 _anyk(_failure_cache))),
    "h": _panel("6.h", "failure cost (caching), 10th plan", 10,
                (_pi(_failure_cache), _idrips(_failure_cache),
                 _anyk(_failure_cache))),
    "i": _panel("6.i", "failure cost (caching), 100th plan", 100,
                (_pi(_failure_cache), _idrips(_failure_cache),
                 _anyk(_failure_cache))),
    # (j)-(l): average monetary cost per tuple, both caching options.
    "j": _panel("6.j", "monetary cost/tuple, 1st plan", 1,
                (_pi(_monetary_nocache), _idrips(_monetary_nocache),
                 _streamer(_monetary_nocache), _anyk(_monetary_nocache),
                 _named("PI+cache", _pi(_monetary_cache)),
                 _named("iDrips+cache", _idrips(_monetary_cache)))),
    "k": _panel("6.k", "monetary cost/tuple, 10th plan", 10,
                (_pi(_monetary_nocache), _idrips(_monetary_nocache),
                 _streamer(_monetary_nocache), _anyk(_monetary_nocache),
                 _named("PI+cache", _pi(_monetary_cache)),
                 _named("iDrips+cache", _idrips(_monetary_cache)))),
    "l": _panel("6.l", "monetary cost/tuple, 100th plan", 100,
                (_pi(_monetary_nocache), _idrips(_monetary_nocache),
                 _streamer(_monetary_nocache), _anyk(_monetary_nocache),
                 _named("PI+cache", _pi(_monetary_cache)),
                 _named("iDrips+cache", _idrips(_monetary_cache)))),
}


def breakdown_spec(k: int = 10, cache: bool = False) -> PanelSpec:
    """Every ordering algorithm on one measure, for the
    evaluation/timing breakdown section of the harness report.

    Linear cost (measure (1)) is fully monotonic, context-free and
    utility-diminishing, so PI, iDrips, Streamer, Greedy *and* AnyK are
    all applicable — the only measure family where all five algorithms
    can be compared head-to-head.  ``cache=True`` additionally opts every
    algorithm into :class:`~repro.observability.caching.CachingUtilityMeasure`.
    """

    def _linear(domain: SyntheticDomain) -> object:
        return domain.linear_cost()

    algorithms = (
        AlgorithmSpec("PI", lambda d: PIOrderer(_linear(d), cache=cache)),
        AlgorithmSpec("iDrips", lambda d: IDripsOrderer(_linear(d), cache=cache)),
        AlgorithmSpec(
            "Streamer", lambda d: StreamerOrderer(_linear(d), cache=cache)
        ),
        AlgorithmSpec("Greedy", lambda d: GreedyOrderer(_linear(d), cache=cache)),
        AlgorithmSpec("AnyK", lambda d: AnyKOrderer(_linear(d), cache=cache)),
    )
    return PanelSpec(
        "breakdown",
        "linear cost, all five algorithms" + (" (memoized)" if cache else ""),
        k,
        algorithms,
    )


def overlap_sweep_spec(
    overlap_rate: float, k: int = 20, algorithms: Optional[tuple[AlgorithmSpec, ...]] = None
) -> PanelSpec:
    """Section 6 in-text claim: Streamer degrades as overlap grows."""
    algos = algorithms or (_pi(_coverage), _streamer(_coverage))
    # Six groups per bucket give 15 group pairs, so the overlap rate
    # actually moves the number of overlapping source pairs; several
    # seeds average out the coin flips.
    return PanelSpec(
        f"overlap-{overlap_rate}",
        f"coverage, overlap rate {overlap_rate}",
        k,
        algos,
        bucket_sizes=(12,),
        overlap_rate=overlap_rate,
        seeds=(0, 1, 2),
        groups_per_bucket=6,
    )


def query_length_spec(query_length: int, k: int = 10) -> PanelSpec:
    """Section 6 in-text claim: trends persist for query length 1-7."""
    return PanelSpec(
        f"qlen-{query_length}",
        f"failure cost, query length {query_length}",
        k,
        (_pi(_failure_nocache), _idrips(_failure_nocache),
         _streamer(_failure_nocache)),
        bucket_sizes=(8,),
        query_length=query_length,
    )


def run_panels(
    panel_ids: Sequence[str],
    bucket_sizes: Sequence[int],
) -> list[PanelResult]:
    results = []
    for panel_id in panel_ids:
        spec = PANELS[panel_id]
        results.append(run_panel(spec, bucket_sizes=bucket_sizes))
    return results


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--panel", nargs="*", default=sorted(PANELS), help="panels to run (a-l)"
    )
    parser.add_argument("--quick", action="store_true", help="small bucket sizes")
    parser.add_argument("--full", action="store_true", help="paper-scale sizes")
    parser.add_argument(
        "--sweeps", action="store_true", help="also run overlap/query-length sweeps"
    )
    parser.add_argument(
        "--breakdown",
        action="store_true",
        help="print per-algorithm evaluation breakdowns "
        "(includes the all-four-algorithms linear-cost panel)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write every panel's rows (timings + evaluation counters) "
        "as JSON to PATH",
    )
    args = parser.parse_args(argv)

    sizes = DEFAULT_SIZES
    if args.quick:
        sizes = QUICK_SIZES
    if args.full:
        sizes = FULL_SIZES

    results = run_panels(args.panel, sizes)
    for result in results:
        print(result.format_table())
        print()
        if args.breakdown:
            print(result.format_breakdown())
            print()

    if args.breakdown:
        four_way = run_panel(breakdown_spec(), bucket_sizes=sizes)
        results.append(four_way)
        print(four_way.format_table())
        print()
        print(four_way.format_breakdown())
        print()

    if args.sweeps:
        for rate in (0.1, 0.3, 0.5, 0.7):
            print(run_panel(overlap_sweep_spec(rate)).format_table())
            print()
        for length in (1, 2, 3, 4, 5):
            print(run_panel(query_length_spec(length)).format_table())
            print()

    if args.metrics_out:
        payload = {result.spec.panel_id: result.as_dict() for result in results}
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote panel metrics to {args.metrics_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

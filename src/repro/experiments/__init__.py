"""Experiment harness reproducing the paper's evaluation (Section 6).

:mod:`repro.experiments.figure6` defines one panel spec per panel of
Figure 6 plus the in-text claims; :mod:`repro.experiments.harness`
runs panels and formats result tables.  Run everything from the
command line with::

    python -m repro.experiments.figure6 --quick
"""

from repro.experiments.harness import (
    AlgorithmSpec,
    PanelResult,
    PanelRow,
    PanelSpec,
    run_panel,
)

__all__ = ["AlgorithmSpec", "PanelResult", "PanelRow", "PanelSpec", "run_panel"]

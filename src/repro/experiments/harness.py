"""Panel runner: time-to-k-th-plan versus bucket size.

Figure 6 of the paper plots "the time it takes from when the query is
issued until the first k best plans have been found, against the
bucket size" — excluding bucket construction, which "takes the same
time for all three algorithms".  A :class:`PanelSpec` captures one
panel: the utility measure, k, the algorithms, and the sweep over
bucket sizes; :func:`run_panel` executes it over one or more seeds and
returns mean timings plus the evaluation counters.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.ordering.base import PlanOrderer
from repro.workloads.synthetic import SyntheticDomain, SyntheticParams, generate_domain

#: Builds an orderer (with its utility measure) for a generated domain.
OrdererBuilder = Callable[[SyntheticDomain], PlanOrderer]


@dataclass(frozen=True)
class AlgorithmSpec:
    """An algorithm entry of a panel."""

    name: str
    build: OrdererBuilder


@dataclass(frozen=True)
class PanelSpec:
    """One panel of the evaluation."""

    panel_id: str
    title: str
    k: int
    algorithms: tuple[AlgorithmSpec, ...]
    bucket_sizes: tuple[int, ...] = (4, 8, 12, 16)
    query_length: int = 3
    overlap_rate: float = 0.3
    seeds: tuple[int, ...] = (0,)
    groups_per_bucket: Optional[int] = None

    def domain(self, bucket_size: int, seed: int) -> SyntheticDomain:
        return generate_domain(
            SyntheticParams(
                query_length=self.query_length,
                bucket_size=bucket_size,
                overlap_rate=self.overlap_rate,
                groups_per_bucket=self.groups_per_bucket,
                seed=seed,
            )
        )


@dataclass
class PanelRow:
    """Mean results for one (algorithm, bucket size) cell."""

    algorithm: str
    bucket_size: int
    seconds: float
    plans_evaluated: float
    first_plan_evaluations: float
    plans_returned: int


@dataclass
class PanelResult:
    """All rows of a panel plus formatting helpers."""

    spec: PanelSpec
    rows: list[PanelRow] = field(default_factory=list)

    def series(self, algorithm: str) -> list[PanelRow]:
        return [r for r in self.rows if r.algorithm == algorithm]

    def row(self, algorithm: str, bucket_size: int) -> PanelRow:
        for candidate in self.rows:
            if (
                candidate.algorithm == algorithm
                and candidate.bucket_size == bucket_size
            ):
                return candidate
        raise KeyError((algorithm, bucket_size))

    def format_table(self) -> str:
        """An ASCII table in the shape of one Figure 6 panel."""
        lines = [
            f"Panel {self.spec.panel_id}: {self.spec.title} "
            f"(k={self.spec.k}, query length {self.spec.query_length}, "
            f"overlap {self.spec.overlap_rate})",
            f"{'bucket':>8} "
            + " ".join(
                f"{algo.name + ' [s]':>16}" for algo in self.spec.algorithms
            )
            + " "
            + " ".join(
                f"{algo.name + ' evals':>16}" for algo in self.spec.algorithms
            ),
        ]
        for bucket_size in self.spec.bucket_sizes:
            cells_time = []
            cells_eval = []
            for algo in self.spec.algorithms:
                row = self.row(algo.name, bucket_size)
                cells_time.append(f"{row.seconds:>16.4f}")
                cells_eval.append(f"{row.plans_evaluated:>16.0f}")
            lines.append(
                f"{bucket_size:>8} " + " ".join(cells_time) + " "
                + " ".join(cells_eval)
            )
        return "\n".join(lines)


def time_ordering(orderer: PlanOrderer, domain: SyntheticDomain, k: int) -> tuple[float, int]:
    """Seconds to the k-th plan and the number of plans returned."""
    start = time.perf_counter()
    plans = orderer.order_list(domain.space, k)
    return time.perf_counter() - start, len(plans)


def run_panel(
    spec: PanelSpec,
    bucket_sizes: Optional[Sequence[int]] = None,
) -> PanelResult:
    """Run every (algorithm, bucket size, seed) cell of a panel."""
    sizes = tuple(bucket_sizes) if bucket_sizes is not None else spec.bucket_sizes
    result = PanelResult(
        PanelSpec(
            spec.panel_id,
            spec.title,
            spec.k,
            spec.algorithms,
            sizes,
            spec.query_length,
            spec.overlap_rate,
            spec.seeds,
            spec.groups_per_bucket,
        )
    )
    for bucket_size in sizes:
        for algo in spec.algorithms:
            seconds: list[float] = []
            evaluated: list[float] = []
            first_evals: list[float] = []
            returned = 0
            for seed in spec.seeds:
                domain = spec.domain(bucket_size, seed)
                orderer = algo.build(domain)
                elapsed, count = time_ordering(orderer, domain, spec.k)
                seconds.append(elapsed)
                evaluated.append(orderer.stats.plans_evaluated)
                first_evals.append(orderer.stats.first_plan_evaluations)
                returned = count
            result.rows.append(
                PanelRow(
                    algorithm=algo.name,
                    bucket_size=bucket_size,
                    seconds=statistics.mean(seconds),
                    plans_evaluated=statistics.mean(evaluated),
                    first_plan_evaluations=statistics.mean(first_evals),
                    plans_returned=returned,
                )
            )
    return result

"""Panel runner: time-to-k-th-plan versus bucket size.

Figure 6 of the paper plots "the time it takes from when the query is
issued until the first k best plans have been found, against the
bucket size" — excluding bucket construction, which "takes the same
time for all three algorithms".  A :class:`PanelSpec` captures one
panel: the utility measure, k, the algorithms, and the sweep over
bucket sizes; :func:`run_panel` executes it over one or more seeds and
returns mean timings plus the evaluation counters.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.observability.tracing import Stopwatch
from repro.ordering.base import PlanOrderer
from repro.workloads.synthetic import SyntheticDomain, SyntheticParams, generate_domain

#: Builds an orderer (with its utility measure) for a generated domain.
OrdererBuilder = Callable[[SyntheticDomain], PlanOrderer]


@dataclass(frozen=True)
class AlgorithmSpec:
    """An algorithm entry of a panel."""

    name: str
    build: OrdererBuilder


@dataclass(frozen=True)
class PanelSpec:
    """One panel of the evaluation."""

    panel_id: str
    title: str
    k: int
    algorithms: tuple[AlgorithmSpec, ...]
    bucket_sizes: tuple[int, ...] = (4, 8, 12, 16)
    query_length: int = 3
    overlap_rate: float = 0.3
    seeds: tuple[int, ...] = (0,)
    groups_per_bucket: Optional[int] = None

    def domain(self, bucket_size: int, seed: int) -> SyntheticDomain:
        return generate_domain(
            SyntheticParams(
                query_length=self.query_length,
                bucket_size=bucket_size,
                overlap_rate=self.overlap_rate,
                groups_per_bucket=self.groups_per_bucket,
                seed=seed,
            )
        )


@dataclass
class PanelRow:
    """Mean results for one (algorithm, bucket size) cell."""

    algorithm: str
    bucket_size: int
    seconds: float
    plans_evaluated: float
    first_plan_evaluations: float
    plans_returned: int
    #: Evaluation breakdown (mean over seeds): where the work went.
    concrete_evaluations: float = 0.0
    abstract_evaluations: float = 0.0
    cache_hits: float = 0.0
    cache_misses: float = 0.0

    def as_dict(self) -> dict[str, float | int | str]:
        return {
            "algorithm": self.algorithm,
            "bucket_size": self.bucket_size,
            "seconds": self.seconds,
            "plans_evaluated": self.plans_evaluated,
            "concrete_evaluations": self.concrete_evaluations,
            "abstract_evaluations": self.abstract_evaluations,
            "first_plan_evaluations": self.first_plan_evaluations,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "plans_returned": self.plans_returned,
        }


@dataclass
class PanelResult:
    """All rows of a panel plus formatting helpers."""

    spec: PanelSpec
    rows: list[PanelRow] = field(default_factory=list)

    def series(self, algorithm: str) -> list[PanelRow]:
        return [r for r in self.rows if r.algorithm == algorithm]

    def row(self, algorithm: str, bucket_size: int) -> PanelRow:
        for candidate in self.rows:
            if (
                candidate.algorithm == algorithm
                and candidate.bucket_size == bucket_size
            ):
                return candidate
        raise KeyError((algorithm, bucket_size))

    def format_table(self) -> str:
        """An ASCII table in the shape of one Figure 6 panel."""
        lines = [
            f"Panel {self.spec.panel_id}: {self.spec.title} "
            f"(k={self.spec.k}, query length {self.spec.query_length}, "
            f"overlap {self.spec.overlap_rate})",
            f"{'bucket':>8} "
            + " ".join(
                f"{algo.name + ' [s]':>16}" for algo in self.spec.algorithms
            )
            + " "
            + " ".join(
                f"{algo.name + ' evals':>16}" for algo in self.spec.algorithms
            ),
        ]
        for bucket_size in self.spec.bucket_sizes:
            cells_time = []
            cells_eval = []
            for algo in self.spec.algorithms:
                row = self.row(algo.name, bucket_size)
                cells_time.append(f"{row.seconds:>16.4f}")
                cells_eval.append(f"{row.plans_evaluated:>16.0f}")
            lines.append(
                f"{bucket_size:>8} " + " ".join(cells_time) + " "
                + " ".join(cells_eval)
            )
        return "\n".join(lines)

    def format_breakdown(self) -> str:
        """Per-algorithm evaluation breakdown: where the work is spent.

        The hardware-independent companion of :meth:`format_table`:
        concrete versus abstract utility evaluations and the
        evaluations paid before the first plan — the quantities behind
        the paper's Section 6 explanations.
        """
        lines = [
            f"Panel {self.spec.panel_id}: evaluation breakdown "
            f"(k={self.spec.k})",
            f"{'algorithm':>14} {'bucket':>8} {'total':>10} {'concrete':>10} "
            f"{'abstract':>10} {'to 1st':>10}",
        ]
        for algo in self.spec.algorithms:
            for bucket_size in self.spec.bucket_sizes:
                row = self.row(algo.name, bucket_size)
                lines.append(
                    f"{row.algorithm:>14} {bucket_size:>8} "
                    f"{row.plans_evaluated:>10.0f} "
                    f"{row.concrete_evaluations:>10.0f} "
                    f"{row.abstract_evaluations:>10.0f} "
                    f"{row.first_plan_evaluations:>10.0f}"
                )
        return "\n".join(lines)

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly dump of the panel (for ``--metrics-out``)."""
        return {
            "panel_id": self.spec.panel_id,
            "title": self.spec.title,
            "k": self.spec.k,
            "query_length": self.spec.query_length,
            "overlap_rate": self.spec.overlap_rate,
            "seeds": list(self.spec.seeds),
            "rows": [row.as_dict() for row in self.rows],
        }


def time_ordering(orderer: PlanOrderer, domain: SyntheticDomain, k: int) -> tuple[float, int]:
    """Seconds to the k-th plan and the number of plans returned."""
    with Stopwatch() as watch:
        plans = orderer.order_list(domain.space, k)
    return watch.elapsed, len(plans)


def run_panel(
    spec: PanelSpec,
    bucket_sizes: Optional[Sequence[int]] = None,
) -> PanelResult:
    """Run every (algorithm, bucket size, seed) cell of a panel."""
    sizes = tuple(bucket_sizes) if bucket_sizes is not None else spec.bucket_sizes
    result = PanelResult(
        PanelSpec(
            spec.panel_id,
            spec.title,
            spec.k,
            spec.algorithms,
            sizes,
            spec.query_length,
            spec.overlap_rate,
            spec.seeds,
            spec.groups_per_bucket,
        )
    )
    for bucket_size in sizes:
        for algo in spec.algorithms:
            seconds: list[float] = []
            evaluated: list[float] = []
            concrete: list[float] = []
            abstract: list[float] = []
            first_evals: list[float] = []
            hits: list[float] = []
            misses: list[float] = []
            returned = 0
            for seed in spec.seeds:
                domain = spec.domain(bucket_size, seed)
                orderer = algo.build(domain)
                elapsed, count = time_ordering(orderer, domain, spec.k)
                seconds.append(elapsed)
                evaluated.append(orderer.stats.plans_evaluated)
                concrete.append(orderer.stats.concrete_evaluations)
                abstract.append(orderer.stats.abstract_evaluations)
                first_evals.append(orderer.stats.first_plan_evaluations)
                cache_hits = orderer.registry.get("utility_cache.hits")
                cache_misses = orderer.registry.get("utility_cache.misses")
                hits.append(cache_hits.value if cache_hits else 0)
                misses.append(cache_misses.value if cache_misses else 0)
                returned = count
            result.rows.append(
                PanelRow(
                    algorithm=algo.name,
                    bucket_size=bucket_size,
                    seconds=statistics.mean(seconds),
                    plans_evaluated=statistics.mean(evaluated),
                    first_plan_evaluations=statistics.mean(first_evals),
                    plans_returned=returned,
                    concrete_evaluations=statistics.mean(concrete),
                    abstract_evaluations=statistics.mean(abstract),
                    cache_hits=statistics.mean(hits),
                    cache_misses=statistics.mean(misses),
                )
            )
    return result
